#ifndef MAGICDB_EXEC_JOIN_OPS_H_
#define MAGICDB_EXEC_JOIN_OPS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/exec/operator.h"
#include "src/exec/scan_ops.h"
#include "src/expr/expr.h"
#include "src/parallel/partitioned_build.h"
#include "src/spill/grace_hash_join.h"
#include "src/storage/index.h"
#include "src/storage/table.h"

namespace magicdb {

/// Tuple-at-a-time nested loops: for each outer tuple the inner child is
/// re-opened and rescanned. Works for arbitrary predicates (including
/// non-equijoins such as E.sal > V.avgsal). Output schema is
/// outer ++ inner.
class NestedLoopsJoinOp final : public Operator {
 public:
  /// `predicate` is over the concatenated schema; may be null (cross
  /// product).
  NestedLoopsJoinOp(OpPtr outer, OpPtr inner, ExprPtr predicate);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {outer_.get(), inner_.get()};
  }

 private:
  OpPtr outer_;
  OpPtr inner_;
  ExprPtr predicate_;
  ExecContext* ctx_ = nullptr;
  Tuple current_outer_;
  bool have_outer_ = false;
  bool inner_open_ = false;
};

/// Index nested loops: probes a stored table's index once per outer tuple.
/// Models the classic repeated-probe strategy; with `remote_probe` set, each
/// probe additionally pays a message round trip (System R* "fetch matches").
class IndexNestedLoopsJoinOp final : public Operator {
 public:
  /// `index` must belong to `inner_table` and cover exactly the columns the
  /// probe key binds. `outer_key_indexes` selects the probe key from the
  /// outer tuple. `residual` (may be null) is evaluated over outer ++ inner.
  IndexNestedLoopsJoinOp(OpPtr outer, const Table* inner_table,
                         const HashIndex* index,
                         std::vector<int> outer_key_indexes, ExprPtr residual,
                         bool remote_probe = false,
                         const std::string& inner_alias = "");

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {outer_.get()};
  }

 private:
  OpPtr outer_;
  const Table* inner_table_;
  const HashIndex* index_;
  std::vector<int> outer_key_indexes_;
  ExprPtr residual_;
  bool remote_probe_;
  ExecContext* ctx_ = nullptr;
  Tuple current_outer_;
  std::vector<int64_t> current_matches_;
  size_t match_pos_ = 0;
  bool have_outer_ = false;
};

/// Classic in-memory hash join on equality keys. Build side is the inner
/// (right) child. `residual` (may be null) filters over outer ++ inner.
class HashJoinOp final : public Operator {
 public:
  HashJoinOp(OpPtr outer, OpPtr inner, std::vector<int> outer_key_indexes,
             std::vector<int> inner_key_indexes, ExprPtr residual);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  /// Native batch probe: hashes a batch of outer keys, probes, and emits
  /// matched rows until the output batch fills (mid-bucket state is saved
  /// across calls). Emission order — and therefore every counter total —
  /// is identical to Next(). The Grace (spilled) path goes through the
  /// row adapter. Outer rank tags (parallel mode) propagate to matches.
  Status NextBatch(RowBatch* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {outer_.get(), inner_.get()};
  }

  /// Parallel execution: route this replica's build rows into a shared
  /// partitioned build instead of a private hash table. `inner_scan` is
  /// the morsel-driven scan at the bottom of this replica's inner chain;
  /// its last_global_row() gives each staged row the scan position the
  /// partition owner sorts by (determinism of bucket order). Call before
  /// Open; the parallel executor wires every replica identically.
  void EnableSharedBuild(std::shared_ptr<SharedHashBuild> shared, int worker,
                         SeqScanOp* inner_scan) {
    shared_build_ = std::move(shared);
    worker_ = worker;
    shared_inner_scan_ = inner_scan;
  }

  /// Cardinality-feedback annotation from the optimizer: the build input's
  /// feedback key and estimated rows. When set, Open() records the observed
  /// build cardinality — the full, DoP-invariant input total (shared builds
  /// sum their slices across the gang) — into the context's ledger right
  /// after the build completes, and may return kReoptimizeRequested when
  /// `can_trigger` and the q-error crosses the context threshold.
  void AnnotateBuildCardinality(std::string key, double estimated_rows,
                                bool can_trigger) {
    feedback_key_ = std::move(key);
    feedback_est_rows_ = estimated_rows;
    feedback_can_trigger_ = can_trigger;
  }

 private:
  /// Grace path: drains the entire outer child into the probe partitions
  /// (tagging rows with their probe sequence) and runs the partition joins.
  Status DrainProbeToSpill();

  /// Shared per-row build step for both the row and batch drains: NULL-key
  /// skip, failpoint, hash, memory charge (coalesced through build_reserve_
  /// when `coalesce_charges`), grace engagement on breach, and staging or
  /// private-table insert. `stage_pos` is the scan position tag for shared
  /// builds (ignored otherwise).
  Status AddBuildTuple(Tuple t, int64_t stage_pos, int64_t* build_bytes,
                       bool coalesce_charges);

  OpPtr outer_;
  OpPtr inner_;
  std::vector<int> outer_keys_;
  std::vector<int> inner_keys_;
  ExprPtr residual_;
  ExecContext* ctx_ = nullptr;
  std::unordered_map<uint64_t, std::vector<Tuple>> build_;
  Tuple current_outer_;
  const std::vector<Tuple>* current_bucket_ = nullptr;
  size_t bucket_pos_ = 0;
  bool have_outer_ = false;
  // Grace partitioning accounting: when the build side exceeds the memory
  // budget, both inputs pay the predicted number of write+read partitioning
  // passes (SpillPasses of the build size over the budget).
  bool spilled_ = false;
  int64_t spill_passes_ = 1;
  int64_t probe_bytes_pending_ = 0;
  // Bytes this replica charged to the query memory tracker for retained
  // build rows (local table or shared staging); released on Close.
  int64_t charged_bytes_ = 0;
  // Actual out-of-core execution, engaged when the build breaches the
  // query's hard memory limit and spilling is enabled (sequential mode
  // only; a governed parallel query degrades to the sequential spill path
  // at the service layer). Replaces the budget heuristic above: real page
  // I/O is charged by the spill files instead.
  std::unique_ptr<GraceHashJoin> grace_;
  bool probe_spilled_ = false;
  int64_t probe_rows_seen_ = 0;
  // Parallel (shared partitioned) build wiring; null in sequential mode.
  std::shared_ptr<SharedHashBuild> shared_build_;
  int worker_ = 0;
  SeqScanOp* shared_inner_scan_ = nullptr;
  // Cardinality-feedback annotation (AnnotateBuildCardinality); key empty =
  // not annotated.
  std::string feedback_key_;
  double feedback_est_rows_ = 0.0;
  bool feedback_can_trigger_ = false;
  // Vectorized path: coalesced build-side memory charges, the owned outer
  // batch the probe resumes from, and per-batch key-hash scratch.
  BatchReserve build_reserve_;
  std::unique_ptr<RowBatch> probe_batch_;
  bool probe_batch_exhausted_ = true;
  bool probe_eof_ = false;
  int32_t probe_sel_idx_ = 0;
  std::vector<uint64_t> probe_hashes_;
  std::vector<uint8_t> probe_has_key_;
};

/// Sort-merge join on equality keys. Both inputs are drained, sorted by
/// their keys, and merged; duplicate key groups produce the cross product.
/// With `outer_presorted` the outer is trusted to arrive sorted on its key
/// columns (an "interesting order" from a previous sort-merge join) and is
/// only drained, not re-sorted.
class SortMergeJoinOp final : public Operator {
 public:
  SortMergeJoinOp(OpPtr outer, OpPtr inner, std::vector<int> outer_key_indexes,
                  std::vector<int> inner_key_indexes, ExprPtr residual,
                  bool outer_presorted = false);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {outer_.get(), inner_.get()};
  }

 private:
  Status DrainSorted(Operator* child, const std::vector<int>& keys,
                     ExecContext* ctx, std::vector<Tuple>* out,
                     bool presorted);
  void AdvanceGroups();

  OpPtr outer_;
  OpPtr inner_;
  std::vector<int> outer_keys_;
  std::vector<int> inner_keys_;
  ExprPtr residual_;
  ExecContext* ctx_ = nullptr;
  std::vector<Tuple> left_;
  std::vector<Tuple> right_;
  size_t li_ = 0, ri_ = 0;        // current group starts
  size_t lg_end_ = 0, rg_end_ = 0;  // current group ends (exclusive)
  size_t lpos_ = 0, rpos_ = 0;      // cursor within the group cross product
  bool in_group_ = false;
  bool outer_presorted_ = false;
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_JOIN_OPS_H_
