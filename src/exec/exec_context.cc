#include "src/exec/exec_context.h"

#include "src/common/logging.h"
#include "src/exec/cardinality_feedback.h"
#include "src/spill/spill_manager.h"

namespace magicdb {

bool ExecContext::spill_enabled() const {
  return spill_manager_ != nullptr && spill_manager_->enabled() &&
         memory_tracker_ != nullptr;
}

Status ExecContext::RecordCardinality(const std::string& key,
                                      const std::string& site,
                                      double estimated, double actual,
                                      bool exact, bool can_trigger) {
  if (cardinality_feedback_ == nullptr) return Status::OK();
  CardinalityObservation obs;
  obs.key = key;
  obs.site = site;
  obs.estimated = estimated;
  obs.actual = actual;
  obs.exact = exact;
  cardinality_feedback_->Record(obs);
  if (reoptimize_qerror_threshold_ > 0 && can_trigger && exact &&
      obs.QError() > reoptimize_qerror_threshold_ &&
      !cardinality_feedback_->IsSuppressed(key)) {
    return Status::ReoptimizeRequested(
        site + ": observed " + std::to_string(static_cast<int64_t>(actual)) +
        " rows vs estimated " +
        std::to_string(static_cast<int64_t>(estimated)) + " (key " + key +
        ")");
  }
  return Status::OK();
}

namespace {
std::vector<int> IdentityIndexes(size_t n) {
  std::vector<int> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<int>(i);
  return idx;
}
}  // namespace

std::shared_ptr<FilterSetBinding> FilterSetBinding::Exact(
    Schema schema, std::vector<Tuple> keys) {
  auto b = std::make_shared<FilterSetBinding>();
  b->schema_ = std::move(schema);
  b->keys_ = std::move(keys);
  b->num_keys_ = static_cast<int64_t>(b->keys_.size());
  const std::vector<int> all = IdentityIndexes(
      static_cast<size_t>(b->schema_.num_columns()));
  for (const Tuple& k : b->keys_) {
    b->exact_set_[HashTupleColumns(k, all)].push_back(k);
  }
  return b;
}

std::shared_ptr<FilterSetBinding> FilterSetBinding::Bloom(
    Schema schema, const std::vector<Tuple>& keys, double bits_per_key) {
  auto b = std::make_shared<FilterSetBinding>();
  b->schema_ = std::move(schema);
  b->num_keys_ = static_cast<int64_t>(keys.size());
  const int64_t bits =
      static_cast<int64_t>(bits_per_key * static_cast<double>(
                                              std::max<size_t>(1, keys.size())));
  const int hashes = std::max(1, static_cast<int>(bits_per_key * 0.69));
  b->bloom_.emplace(bits, hashes);
  const std::vector<int> all =
      IdentityIndexes(static_cast<size_t>(b->schema_.num_columns()));
  for (const Tuple& k : keys) {
    b->bloom_->Add(HashTupleColumns(k, all));
  }
  return b;
}

bool FilterSetBinding::MayContain(const Tuple& tuple,
                                  const std::vector<int>& key_indexes) const {
  MAGICDB_CHECK(static_cast<int>(key_indexes.size()) ==
                schema_.num_columns());
  const uint64_t h = HashTupleColumns(tuple, key_indexes);
  if (bloom_.has_value()) return bloom_->MayContain(h);
  auto it = exact_set_.find(h);
  if (it == exact_set_.end()) return false;
  Tuple key = ProjectTuple(tuple, key_indexes);
  for (const Tuple& k : it->second) {
    if (CompareTuples(k, key) == 0) return true;
  }
  return false;
}

int64_t FilterSetBinding::SizeBytes() const {
  if (bloom_.has_value()) return bloom_->SizeBytes();
  int64_t bytes = 0;
  for (const Tuple& k : keys_) bytes += TupleByteWidth(k);
  return bytes;
}

}  // namespace magicdb
