#ifndef MAGICDB_EXEC_EXCHANGE_OP_H_
#define MAGICDB_EXEC_EXCHANGE_OP_H_

#include <string>

#include "src/exec/operator.h"

namespace magicdb {

/// Ships the child's tuples between sites in the distributed cost model
/// (§5.1). Data is unchanged; the operator charges one message per page of
/// shipped bytes (batched network transfer) plus per-byte cost, the same
/// quantities the optimizer's communication model predicts.
class ShipOp final : public Operator {
 public:
  ShipOp(OpPtr child, int from_site, int to_site);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

 private:
  OpPtr child_;
  int from_site_;
  int to_site_;
  ExecContext* ctx_ = nullptr;
  int64_t bytes_in_batch_ = 0;
  bool opened_message_charged_ = false;
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_EXCHANGE_OP_H_
