#include "src/exec/gather_op.h"

#include <utility>

#include "src/common/logging.h"
#include "src/spill/row_serde.h"

namespace magicdb {

GatherOp::GatherOp(Schema schema, std::vector<GatherRun> runs)
    : Operator(std::move(schema)), runs_(std::move(runs)) {
  for (const auto& run : runs_) {
    for (size_t i = 1; i < run.rows.size(); ++i) {
      MAGICDB_CHECK(run.rows[i - 1].pos < run.rows[i].pos ||
                    (run.rows[i - 1].pos == run.rows[i].pos &&
                     run.rows[i - 1].sub <= run.rows[i].sub));
    }
  }
}

GatherOp::GatherOp(Schema schema, std::vector<std::vector<GatherRow>> runs)
    : GatherOp(std::move(schema), [&] {
        std::vector<GatherRun> wrapped(runs.size());
        for (size_t r = 0; r < runs.size(); ++r) {
          wrapped[r].rows = std::move(runs[r]);
        }
        return wrapped;
      }()) {}

Status GatherOp::AdvanceFile(size_t r) {
  Cursor& c = cursor_[r];
  std::string_view record;
  bool has = false;
  MAGICDB_RETURN_IF_ERROR(
      runs_[r].spilled->NextRecord(&record, &has, /*ctx=*/nullptr));
  if (!has) {
    c.file_has = false;
    return Status::OK();
  }
  spill::RecordReader reader(record.data(), record.size());
  MAGICDB_RETURN_IF_ERROR(reader.ReadI64(&c.pos));
  MAGICDB_RETURN_IF_ERROR(reader.ReadI64(&c.sub));
  MAGICDB_RETURN_IF_ERROR(reader.ReadTuple(&c.row));
  c.file_has = true;
  return Status::OK();
}

bool GatherOp::Head(size_t r, int64_t* pos, int64_t* sub) const {
  const Cursor& c = cursor_[r];
  if (c.file_has) {
    *pos = c.pos;
    *sub = c.sub;
    return true;
  }
  if (c.mem >= runs_[r].rows.size()) return false;
  *pos = runs_[r].rows[c.mem].pos;
  *sub = runs_[r].rows[c.mem].sub;
  return true;
}

Status GatherOp::Open(ExecContext* /*ctx*/) {
  cursor_.assign(runs_.size(), Cursor{});
  for (size_t r = 0; r < runs_.size(); ++r) {
    if (runs_[r].spilled == nullptr) continue;
    MAGICDB_RETURN_IF_ERROR(runs_[r].spilled->Rewind());
    MAGICDB_RETURN_IF_ERROR(AdvanceFile(r));
  }
  return Status::OK();
}

Status GatherOp::Next(Tuple* out, bool* eof) {
  // Pick the run whose head has the smallest (pos, sub) rank; full ties
  // (possible only when several output rows share one rank, all within one
  // worker's run) resolve to the lowest run index, and within a run FIFO
  // order is preserved — both match sequential emission order.
  int best = -1;
  int64_t best_pos = 0, best_sub = 0;
  for (size_t r = 0; r < runs_.size(); ++r) {
    int64_t pos = 0, sub = 0;
    if (!Head(r, &pos, &sub)) continue;
    if (best < 0 || pos < best_pos || (pos == best_pos && sub < best_sub)) {
      best = static_cast<int>(r);
      best_pos = pos;
      best_sub = sub;
    }
  }
  if (best < 0) {
    *eof = true;
    return Status::OK();
  }
  Cursor& c = cursor_[best];
  if (c.file_has) {
    *out = std::move(c.row);
    *eof = false;
    return AdvanceFile(static_cast<size_t>(best));
  }
  *out = std::move(runs_[best].rows[c.mem++].row);
  *eof = false;
  return Status::OK();
}

Status GatherOp::Close() {
  runs_.clear();  // destroys any spilled files, removing them from disk
  cursor_.clear();
  return Status::OK();
}

std::string GatherOp::Describe() const {
  return "Gather(runs=" + std::to_string(runs_.size()) + ")";
}

}  // namespace magicdb
