#include "src/exec/gather_op.h"

#include <utility>

#include "src/common/logging.h"

namespace magicdb {

GatherOp::GatherOp(Schema schema, std::vector<std::vector<GatherRow>> runs)
    : Operator(std::move(schema)), runs_(std::move(runs)) {
  for (const auto& run : runs_) {
    for (size_t i = 1; i < run.size(); ++i) {
      MAGICDB_CHECK(run[i - 1].pos < run[i].pos ||
                    (run[i - 1].pos == run[i].pos &&
                     run[i - 1].sub <= run[i].sub));
    }
  }
}

Status GatherOp::Open(ExecContext* /*ctx*/) {
  cursor_.assign(runs_.size(), 0);
  return Status::OK();
}

Status GatherOp::Next(Tuple* out, bool* eof) {
  // Pick the run whose head has the smallest (pos, sub) rank; full ties
  // (possible only when several output rows share one rank, all within one
  // worker's run) resolve to the lowest run index, and within a run FIFO
  // order is preserved — both match sequential emission order.
  int best = -1;
  for (size_t r = 0; r < runs_.size(); ++r) {
    if (cursor_[r] >= runs_[r].size()) continue;
    if (best < 0) {
      best = static_cast<int>(r);
      continue;
    }
    const GatherRow& head = runs_[r][cursor_[r]];
    const GatherRow& top = runs_[best][cursor_[best]];
    if (head.pos < top.pos || (head.pos == top.pos && head.sub < top.sub)) {
      best = static_cast<int>(r);
    }
  }
  if (best < 0) {
    *eof = true;
    return Status::OK();
  }
  *out = std::move(runs_[best][cursor_[best]++].row);
  *eof = false;
  return Status::OK();
}

Status GatherOp::Close() {
  runs_.clear();
  cursor_.clear();
  return Status::OK();
}

std::string GatherOp::Describe() const {
  return "Gather(runs=" + std::to_string(runs_.size()) + ")";
}

}  // namespace magicdb
