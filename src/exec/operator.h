#ifndef MAGICDB_EXEC_OPERATOR_H_
#define MAGICDB_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/exec/exec_context.h"
#include "src/types/schema.h"
#include "src/types/tuple.h"

namespace magicdb {

/// Volcano-style physical operator. Lifecycle:
///
///   Open(ctx) -> Next()* -> Close()
///
/// Open resets the operator so a parent (e.g. nested-loops join) can rescan
/// by re-opening. Operators charge the work they perform to
/// ctx->counters(), in the same units the optimizer's cost model predicts.
class Operator {
 public:
  explicit Operator(Schema schema) : schema_(std::move(schema)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Prepares (or re-prepares) the operator for a scan.
  virtual Status Open(ExecContext* ctx) = 0;

  /// Produces the next tuple. Sets *eof=true (and leaves *out untouched) at
  /// end of stream.
  virtual Status Next(Tuple* out, bool* eof) = 0;

  virtual Status Close() = 0;

  const Schema& schema() const { return schema_; }

  /// Operator name with its key parameters, e.g. "HashJoin(keys=[0]=[1])".
  virtual std::string Describe() const = 0;

  /// Children for tree printing (non-owning views).
  virtual std::vector<const Operator*> Children() const { return {}; }

  /// Indented physical-plan rendering rooted at this operator.
  std::string TreeString() const;

 protected:
  Schema schema_;
};

using OpPtr = std::unique_ptr<Operator>;

/// Runs `root` to completion under `ctx` and returns all produced tuples.
StatusOr<std::vector<Tuple>> ExecuteToVector(Operator* root, ExecContext* ctx);

}  // namespace magicdb

#endif  // MAGICDB_EXEC_OPERATOR_H_
