#ifndef MAGICDB_EXEC_OPERATOR_H_
#define MAGICDB_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/exec/exec_context.h"
#include "src/exec/row_batch.h"
#include "src/types/schema.h"
#include "src/types/tuple.h"

namespace magicdb {

/// Volcano-style physical operator. Lifecycle:
///
///   Open(ctx) -> Next()* -> Close()
///
/// Open resets the operator so a parent (e.g. nested-loops join) can rescan
/// by re-opening. Operators charge the work they perform to
/// ctx->counters(), in the same units the optimizer's cost model predicts.
class Operator {
 public:
  explicit Operator(Schema schema) : schema_(std::move(schema)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Prepares (or re-prepares) the operator for a scan.
  virtual Status Open(ExecContext* ctx) = 0;

  /// Produces the next tuple. Sets *eof=true (and leaves *out untouched) at
  /// end of stream.
  virtual Status Next(Tuple* out, bool* eof) = 0;

  /// Vectorized pull: fills `out` (reset to this operator's column count,
  /// capacity preserved) with up to out->capacity() rows. Contract:
  ///
  ///   - the final batch may carry rows together with *eof = true;
  ///   - a batch with zero live rows and *eof = false is never returned
  ///     (operators loop internally instead of bouncing empty batches);
  ///   - row values, order, and counter charges are identical to draining
  ///     the same operator through Next().
  ///
  /// The base implementation adapts any row-only operator by looping
  /// Next() into the batch, which is what makes mixed batch/row trees
  /// legal: a batch-native parent can always pull from a row-only child.
  virtual Status NextBatch(RowBatch* out, bool* eof);

  virtual Status Close() = 0;

  const Schema& schema() const { return schema_; }

  /// Operator name with its key parameters, e.g. "HashJoin(keys=[0]=[1])".
  virtual std::string Describe() const = 0;

  /// Children for tree printing (non-owning views).
  virtual std::vector<const Operator*> Children() const { return {}; }

  /// Indented physical-plan rendering rooted at this operator.
  std::string TreeString() const;

 protected:
  Schema schema_;
};

using OpPtr = std::unique_ptr<Operator>;

/// Runs `root` to completion under `ctx` and returns all produced tuples.
/// When ctx->batch_size() > 0 the drain pulls batches through NextBatch
/// (with one cancellation checkpoint per batch); otherwise it loops Next().
StatusOr<std::vector<Tuple>> ExecuteToVector(Operator* root, ExecContext* ctx);

}  // namespace magicdb

#endif  // MAGICDB_EXEC_OPERATOR_H_
