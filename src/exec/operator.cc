#include "src/exec/operator.h"

#include <sstream>

namespace magicdb {

namespace {
void AppendTree(const Operator& op, int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  *os << op.Describe() << "\n";
  for (const Operator* c : op.Children()) {
    AppendTree(*c, depth + 1, os);
  }
}
}  // namespace

std::string Operator::TreeString() const {
  std::ostringstream os;
  AppendTree(*this, 0, &os);
  return os.str();
}

Status Operator::NextBatch(RowBatch* out, bool* eof) {
  out->ResetForWrite(schema_.num_columns());
  *eof = false;
  Tuple t;
  bool row_eof = false;
  while (!out->full()) {
    MAGICDB_RETURN_IF_ERROR(Next(&t, &row_eof));
    if (row_eof) {
      *eof = true;
      break;
    }
    out->AppendTuple(std::move(t));
  }
  return Status::OK();
}

StatusOr<std::vector<Tuple>> ExecuteToVector(Operator* root,
                                             ExecContext* ctx) {
  MAGICDB_RETURN_IF_ERROR(root->Open(ctx));
  std::vector<Tuple> rows;
  if (ctx->batch_size() > 0) {
    RowBatch batch(static_cast<int32_t>(ctx->batch_size()));
    while (true) {
      bool eof = false;
      MAGICDB_RETURN_IF_ERROR(root->NextBatch(&batch, &eof));
      batch.MoveActiveToTuples(&rows);
      // One cancellation checkpoint per batch (vs per 1024 rows below).
      MAGICDB_RETURN_IF_ERROR(ctx->CheckCancelled());
      if (eof) break;
    }
  } else {
    while (true) {
      Tuple t;
      bool eof = false;
      MAGICDB_RETURN_IF_ERROR(root->Next(&t, &eof));
      if (eof) break;
      rows.push_back(std::move(t));
      // Cancellation checkpoint for plans whose output loop dominates (the
      // scan-level checkpoints cover the blocking build phases).
      if ((rows.size() & 1023) == 0) {
        MAGICDB_RETURN_IF_ERROR(ctx->CheckCancelled());
      }
    }
  }
  MAGICDB_RETURN_IF_ERROR(root->Close());
  return rows;
}

}  // namespace magicdb
