#include "src/exec/operator.h"

#include <sstream>

namespace magicdb {

namespace {
void AppendTree(const Operator& op, int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  *os << op.Describe() << "\n";
  for (const Operator* c : op.Children()) {
    AppendTree(*c, depth + 1, os);
  }
}
}  // namespace

std::string Operator::TreeString() const {
  std::ostringstream os;
  AppendTree(*this, 0, &os);
  return os.str();
}

StatusOr<std::vector<Tuple>> ExecuteToVector(Operator* root,
                                             ExecContext* ctx) {
  MAGICDB_RETURN_IF_ERROR(root->Open(ctx));
  std::vector<Tuple> rows;
  while (true) {
    Tuple t;
    bool eof = false;
    MAGICDB_RETURN_IF_ERROR(root->Next(&t, &eof));
    if (eof) break;
    rows.push_back(std::move(t));
    // Cancellation checkpoint for plans whose output loop dominates (the
    // scan-level checkpoints cover the blocking build phases).
    if ((rows.size() & 1023) == 0) {
      MAGICDB_RETURN_IF_ERROR(ctx->CheckCancelled());
    }
  }
  MAGICDB_RETURN_IF_ERROR(root->Close());
  return rows;
}

}  // namespace magicdb
