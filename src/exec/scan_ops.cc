#include "src/exec/scan_ops.h"

#include <algorithm>

#include "src/common/failpoint.h"

namespace magicdb {

SeqScanOp::SeqScanOp(const Table* table, const std::string& alias)
    : Operator(alias.empty() ? table->schema()
                             : table->schema().WithQualifier(alias)),
      table_(table) {}

Status SeqScanOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  next_row_ = 0;
  have_morsel_ = false;
  last_global_row_ = -1;
  rows_per_page_ = RowsPerPage(table_->schema().TupleWidthBytes());
  return Status::OK();
}

Status SeqScanOp::Next(Tuple* out, bool* eof) {
  if (morsels_ != nullptr) {
    while (!have_morsel_ || next_row_ >= morsel_.end) {
      // Morsel claims are the scan's cancellation checkpoint in parallel
      // mode: a cancelled worker stops claiming work and unwinds before
      // its next barrier, letting the abort path release its peers.
      MAGICDB_RETURN_IF_ERROR(ctx_->CheckCancelled());
      if (!morsels_->Next(&morsel_)) {
        *eof = true;
        return Status::OK();
      }
      have_morsel_ = true;
      next_row_ = morsel_.begin;
    }
    // Morsels are page-aligned, so the boundary test below stays exact.
  } else if (next_row_ >= table_->NumRows()) {
    *eof = true;
    return Status::OK();
  }
  if (next_row_ % rows_per_page_ == 0) {
    MAGICDB_FAILPOINT("storage.page_read");
    ctx_->counters().pages_read += 1;
    // Page boundaries are the sequential checkpoint: every blocking loop
    // (hash build, aggregation, sort input) bottoms out at a scan, so a
    // cancelled query unwinds within one page of rows.
    MAGICDB_RETURN_IF_ERROR(ctx_->CheckCancelled());
  }
  ctx_->counters().tuples_processed += 1;
  last_global_row_ = next_row_;
  *out = table_->row(next_row_++);
  *eof = false;
  return Status::OK();
}

Status SeqScanOp::NextBatch(RowBatch* out, bool* eof) {
  const int num_cols = schema_.num_columns();
  out->ResetForWrite(num_cols);
  *eof = false;
  if (morsels_ != nullptr) out->EnableRanks();
  while (!out->full()) {
    int64_t chunk_end;
    if (morsels_ != nullptr) {
      if (!have_morsel_ || next_row_ >= morsel_.end) {
        // Morsel claims keep their cancellation checkpoint (see Next).
        MAGICDB_RETURN_IF_ERROR(ctx_->CheckCancelled());
        if (!morsels_->Next(&morsel_)) {
          *eof = true;
          break;
        }
        have_morsel_ = true;
        next_row_ = morsel_.begin;
      }
      chunk_end = morsel_.end;
    } else {
      if (next_row_ >= table_->NumRows()) {
        *eof = true;
        break;
      }
      chunk_end = table_->NumRows();
    }
    const int64_t room = out->capacity() - out->num_rows();
    const int64_t chunk = std::min(room, chunk_end - next_row_);
    // Page charges for every boundary in [next_row_, next_row_ + chunk) —
    // identical totals to the per-row boundary test in Next().
    const int64_t first_boundary =
        ((next_row_ + rows_per_page_ - 1) / rows_per_page_) * rows_per_page_;
    for (int64_t b = first_boundary; b < next_row_ + chunk;
         b += rows_per_page_) {
      MAGICDB_FAILPOINT("storage.page_read");
      ctx_->counters().pages_read += 1;
    }
    // Column-wise copy into the batch: one output column at a time, so
    // each inner loop appends to a single vector.
    for (int c = 0; c < num_cols; ++c) {
      std::vector<Value>& col = out->column(c);
      col.reserve(static_cast<size_t>(out->num_rows() + chunk));
      for (int64_t i = 0; i < chunk; ++i) {
        col.push_back(table_->row(next_row_ + i)[static_cast<size_t>(c)]);
      }
    }
    if (morsels_ != nullptr) {
      for (int64_t i = 0; i < chunk; ++i) {
        out->pos().push_back(next_row_ + i);
        out->sub().push_back(0);
      }
    }
    out->set_num_rows(out->num_rows() + static_cast<int32_t>(chunk));
    ctx_->counters().tuples_processed += chunk;
    next_row_ += chunk;
    last_global_row_ = next_row_ - 1;
  }
  // One cancellation check per batch replaces the per-page check in Next().
  return ctx_->CheckCancelled();
}

Status SeqScanOp::Close() { return Status::OK(); }

std::string SeqScanOp::Describe() const {
  return "SeqScan(" + table_->name() + ", rows=" +
         std::to_string(table_->NumRows()) + ")";
}

OrderedIndexScanOp::OrderedIndexScanOp(const Table* table,
                                       const OrderedIndex* index,
                                       const std::string& alias)
    : Operator(alias.empty() ? table->schema()
                             : table->schema().WithQualifier(alias)),
      table_(table),
      index_(index) {}

Status OrderedIndexScanOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  next_ = 0;
  rows_per_page_ = RowsPerPage(table_->schema().TupleWidthBytes());
  row_order_ = index_->Range({}, {});
  ctx->counters().pages_read += index_->ModelledHeight();
  return Status::OK();
}

Status OrderedIndexScanOp::Next(Tuple* out, bool* eof) {
  if (next_ >= static_cast<int64_t>(row_order_.size())) {
    *eof = true;
    return Status::OK();
  }
  if (next_ % rows_per_page_ == 0) {
    ctx_->counters().pages_read += 1;
  }
  ctx_->counters().tuples_processed += 1;
  *out = table_->row(row_order_[next_++]);
  *eof = false;
  return Status::OK();
}

Status OrderedIndexScanOp::Close() {
  row_order_.clear();
  return Status::OK();
}

std::string OrderedIndexScanOp::Describe() const {
  return "OrderedIndexScan(" + table_->name() + ")";
}

FilterSetScanOp::FilterSetScanOp(std::string binding_id, Schema schema)
    : Operator(std::move(schema)), binding_id_(std::move(binding_id)) {}

Status FilterSetScanOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  next_row_ = 0;
  MAGICDB_ASSIGN_OR_RETURN(binding_, ctx->GetFilterSet(binding_id_));
  if (binding_->is_bloom()) {
    return Status::Internal(
        "filter set " + binding_id_ +
        " is a Bloom filter and cannot be scanned as a relation");
  }
  rows_per_page_ = RowsPerPage(schema_.TupleWidthBytes());
  return Status::OK();
}

Status FilterSetScanOp::Next(Tuple* out, bool* eof) {
  if (next_row_ >= binding_->NumKeys()) {
    *eof = true;
    return Status::OK();
  }
  if (next_row_ % rows_per_page_ == 0) {
    ctx_->counters().pages_read += 1;
  }
  ctx_->counters().tuples_processed += 1;
  *out = binding_->keys()[next_row_++];
  *eof = false;
  return Status::OK();
}

Status FilterSetScanOp::Close() { return Status::OK(); }

std::string FilterSetScanOp::Describe() const {
  return "FilterSetScan(" + binding_id_ + ")";
}

VectorScanOp::VectorScanOp(const std::vector<Tuple>* rows, Schema schema,
                           bool charge_pages)
    : Operator(std::move(schema)), rows_(rows), charge_pages_(charge_pages) {}

Status VectorScanOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  next_row_ = 0;
  rows_per_page_ = RowsPerPage(schema_.TupleWidthBytes());
  return Status::OK();
}

Status VectorScanOp::Next(Tuple* out, bool* eof) {
  if (next_row_ >= static_cast<int64_t>(rows_->size())) {
    *eof = true;
    return Status::OK();
  }
  if (next_row_ % rows_per_page_ == 0) {
    if (charge_pages_) ctx_->counters().pages_read += 1;
    MAGICDB_RETURN_IF_ERROR(ctx_->CheckCancelled());
  }
  ctx_->counters().tuples_processed += 1;
  *out = (*rows_)[next_row_++];
  *eof = false;
  return Status::OK();
}

Status VectorScanOp::NextBatch(RowBatch* out, bool* eof) {
  const int num_cols = schema_.num_columns();
  out->ResetForWrite(num_cols);
  const int64_t total = static_cast<int64_t>(rows_->size());
  if (next_row_ >= total) {
    *eof = true;
    return ctx_->CheckCancelled();
  }
  const int64_t chunk =
      std::min(static_cast<int64_t>(out->capacity()), total - next_row_);
  if (charge_pages_) {
    const int64_t first_boundary =
        ((next_row_ + rows_per_page_ - 1) / rows_per_page_) * rows_per_page_;
    for (int64_t b = first_boundary; b < next_row_ + chunk;
         b += rows_per_page_) {
      ctx_->counters().pages_read += 1;
    }
  }
  for (int64_t i = 0; i < chunk; ++i) {
    const Tuple& row = (*rows_)[static_cast<size_t>(next_row_ + i)];
    for (int c = 0; c < num_cols; ++c) {
      out->column(c).push_back(row[static_cast<size_t>(c)]);
    }
  }
  out->set_num_rows(static_cast<int32_t>(chunk));
  ctx_->counters().tuples_processed += chunk;
  next_row_ += chunk;
  *eof = next_row_ >= total;
  // One cancellation check per batch replaces the page-boundary check.
  return ctx_->CheckCancelled();
}

Status VectorScanOp::Close() { return Status::OK(); }

std::string VectorScanOp::Describe() const {
  return "VectorScan(rows=" + std::to_string(rows_->size()) + ")";
}

}  // namespace magicdb
