#include "src/exec/exchange_op.h"

#include "src/common/cost_counters.h"

namespace magicdb {

ShipOp::ShipOp(OpPtr child, int from_site, int to_site)
    : Operator(child->schema()),
      child_(std::move(child)),
      from_site_(from_site),
      to_site_(to_site) {}

Status ShipOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  bytes_in_batch_ = 0;
  opened_message_charged_ = false;
  return child_->Open(ctx);
}

Status ShipOp::Next(Tuple* out, bool* eof) {
  MAGICDB_RETURN_IF_ERROR(child_->Next(out, eof));
  if (*eof) return Status::OK();
  if (from_site_ == to_site_) return Status::OK();  // no-op locally
  if (!opened_message_charged_) {
    ctx_->counters().messages_sent += 1;  // first batch / connection
    opened_message_charged_ = true;
  }
  const int64_t bytes = TupleByteWidth(*out);
  ctx_->counters().bytes_shipped += bytes;
  bytes_in_batch_ += bytes;
  // One additional message per full page of payload.
  while (bytes_in_batch_ >= CostConstants::kPageSizeBytes) {
    bytes_in_batch_ -= CostConstants::kPageSizeBytes;
    ctx_->counters().messages_sent += 1;
  }
  return Status::OK();
}

Status ShipOp::Close() {
  if (ctx_ != nullptr && from_site_ != to_site_ && bytes_in_batch_ > 0) {
    // The last partial page of payload still crosses the wire as one
    // (short) message. Without this flush the measured message count
    // undercounted by one whenever the shipped bytes were not an exact
    // multiple of the page size.
    ctx_->counters().messages_sent += 1;
    bytes_in_batch_ = 0;
  }
  return child_->Close();
}

std::string ShipOp::Describe() const {
  return "Ship(site" + std::to_string(from_site_) + " -> site" +
         std::to_string(to_site_) + ")";
}

}  // namespace magicdb
