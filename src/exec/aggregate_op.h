#ifndef MAGICDB_EXEC_AGGREGATE_OP_H_
#define MAGICDB_EXEC_AGGREGATE_OP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/exec/agg_state.h"
#include "src/exec/operator.h"
#include "src/expr/expr.h"
#include "src/parallel/partitioned_aggregate.h"
#include "src/plan/logical_plan.h"
#include "src/spill/agg_spill.h"

namespace magicdb {

class FilterJoinOp;
class SeqScanOp;

/// Hash aggregation: groups by the group-by expressions and computes the
/// aggregate specs per group. Output layout: group columns, then aggregate
/// results, matching AggregateNode.
///
/// With no group-by columns, exactly one output row is produced (SQL scalar
/// aggregate semantics, COUNT(*)=0 on empty input).
///
/// Two execution modes:
///
///   Sequential (default): Open() drains the child into one hash table;
///   Next() emits groups in first-seen order.
///
///   Parallel (EnableParallel): this instance is one of `dop` pipeline
///   replicas. Open() accumulates a morsel-local partial table over this
///   worker's input slice, stages the partial groups into the
///   SharedAggregate by key-hash partition, then merges the one partition
///   this worker owns (two-phase aggregation; see SharedAggregate). Next()
///   emits the merged partition's groups — sorted by first-seen input rank
///   (pos, sub), which last_group_pos()/last_group_sub() expose so the
///   gather merge can interleave the per-worker runs back into exactly the
///   sequential first-seen output order.
class HashAggregateOp final : public Operator {
 public:
  HashAggregateOp(OpPtr child, std::vector<ExprPtr> group_by,
                  std::vector<AggSpec> aggs, Schema schema);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  /// Native batch emission: finalized groups stream out column-wise (rank
  /// tags attached in parallel mode so the gather merge can order them).
  /// The out-of-core (AggSpill) output path goes through the row adapter.
  Status NextBatch(RowBatch* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

  /// Switches this replica into two-phase parallel mode. `worker` is this
  /// replica's index in `shared`. Input rows are ranked by the driving
  /// chain's position provider: `filter_join->last_probe_global_pos()` when
  /// the chain contains a Filter Join (it re-emits the production set, so
  /// several input rows may share one driving position — the per-position
  /// emission index `sub` disambiguates), else
  /// `driving_scan->last_global_row()`.
  void EnableParallel(std::shared_ptr<SharedAggregate> shared, int worker,
                      SeqScanOp* driving_scan, FilterJoinOp* filter_join) {
    shared_ = std::move(shared);
    worker_ = worker;
    pos_scan_ = driving_scan;
    pos_filter_join_ = filter_join;
  }

  /// First-seen input rank (pos, sub) of the group most recently emitted by
  /// Next(). Parallel mode only; the gather merge orders rows by it.
  int64_t last_group_pos() const { return last_group_pos_; }
  int64_t last_group_sub() const { return last_group_sub_; }

  /// Cardinality-feedback annotation: the optimizer's group-count estimate.
  /// Sequential Open() records the observed group count into the context
  /// ledger as an observation-only entry (parallel partials are
  /// worker-local, so the parallel path does not record).
  void AnnotateGroupCardinality(std::string key, double estimated_groups) {
    feedback_key_ = std::move(key);
    feedback_est_groups_ = estimated_groups;
  }

 private:
  Status Accumulate(const Tuple& row, StagedGroup* group);
  /// Folds one already-evaluated argument value into an aggregate state —
  /// the shared kernel of the row path (Accumulate) and the vectorized path
  /// (FoldPreEvaluated). NULLs are skipped per SQL semantics.
  static Status FoldValue(const AggSpec& spec, const Value& v, AggState* st);
  /// Batch-path accumulate: folds row `r` of the per-spec resolved argument
  /// operands (zero-copy column views where the argument is a plain column
  /// ref) into `group`. Expression-evaluation counters are charged
  /// batch-wise by the caller.
  Status FoldPreEvaluated(const std::vector<BatchOperand>& agg_ops, int32_t r,
                          StagedGroup* group);
  /// Routes one input row's group key to its destination — a spill partial,
  /// an existing resident group, or a freshly charged one (with the
  /// breach->eviction retry loop) — and applies `fold` to it. Shared by the
  /// row and batch input drains; `coalesce_charges` selects the chunked
  /// reservation (group_reserve_) over exact per-group charges. Templated
  /// on the key source (Equals/Materialize/ByteWidth — the key Tuple is
  /// materialized at most once, and not at all when the group already
  /// exists) and the fold callable, so the per-input-row call carries no
  /// std::function construction (defined in aggregate_op.cc; both drains
  /// live there, so the instantiations are local).
  template <typename KeySrc, typename Fold>
  Status DispatchRow(ExecContext* ctx, const KeySrc& key_src, uint64_t h,
                     int64_t input_pos, int64_t input_sub, bool parallel,
                     bool coalesce_charges, const Fold& fold);
  StatusOr<Value> Finalize(const AggSpec& spec, const AggState& state) const;

  OpPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<AggSpec> aggs_;
  ExecContext* ctx_ = nullptr;
  // Sequential: first-seen order. Parallel: this worker's merged partition,
  // sorted by first-seen input rank.
  std::vector<StagedGroup> groups_;
  std::unordered_map<uint64_t, std::vector<int64_t>> group_index_;
  size_t next_group_ = 0;
  bool aggregated_ = false;
  // Bytes charged to the query memory tracker for retained groups (keys +
  // aggregate states, whether local or staged into the shared partitioned
  // aggregate); released on Close.
  int64_t charged_bytes_ = 0;
  // Out-of-core hash aggregation, engaged when a new group breaches the
  // query's hard memory limit and spilling is enabled (sequential mode
  // only). Victim partitions of the group table are evicted as partial
  // states and re-aggregated one at a time at end of input.
  std::unique_ptr<AggSpill> agg_spill_;
  // Vectorized path: coalesced new-group memory charges (one tracker round
  // trip per reservation chunk instead of per group).
  BatchReserve group_reserve_;
  // Cardinality-feedback annotation (AnnotateGroupCardinality); key empty =
  // not annotated.
  std::string feedback_key_;
  double feedback_est_groups_ = 0.0;

  // Parallel mode (EnableParallel); null/unused when sequential.
  std::shared_ptr<SharedAggregate> shared_;
  int worker_ = 0;
  SeqScanOp* pos_scan_ = nullptr;
  FilterJoinOp* pos_filter_join_ = nullptr;
  int64_t last_group_pos_ = 0;
  int64_t last_group_sub_ = 0;
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_AGGREGATE_OP_H_
