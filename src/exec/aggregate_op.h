#ifndef MAGICDB_EXEC_AGGREGATE_OP_H_
#define MAGICDB_EXEC_AGGREGATE_OP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/exec/operator.h"
#include "src/expr/expr.h"
#include "src/plan/logical_plan.h"

namespace magicdb {

/// Hash aggregation: groups by the group-by expressions and computes the
/// aggregate specs per group. Output layout: group columns, then aggregate
/// results, matching AggregateNode.
///
/// With no group-by columns, exactly one output row is produced (SQL scalar
/// aggregate semantics, COUNT(*)=0 on empty input).
class HashAggregateOp final : public Operator {
 public:
  HashAggregateOp(OpPtr child, std::vector<ExprPtr> group_by,
                  std::vector<AggSpec> aggs, Schema schema);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

 private:
  struct AggState {
    int64_t count = 0;        // non-null inputs (or rows for COUNT(*))
    double sum = 0.0;         // numeric running sum
    int64_t isum = 0;         // exact int64 running sum
    bool int_sum = true;      // all inputs so far were int64
    Value min, max;           // extremes (NULL until first input)
  };

  struct Group {
    Tuple key;
    std::vector<AggState> states;
  };

  Status Accumulate(const Tuple& row, Group* group);
  StatusOr<Value> Finalize(const AggSpec& spec, const AggState& state) const;

  OpPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<AggSpec> aggs_;
  ExecContext* ctx_ = nullptr;
  std::vector<Group> groups_;  // output order = first-seen order
  std::unordered_map<uint64_t, std::vector<int64_t>> group_index_;
  size_t next_group_ = 0;
  bool aggregated_ = false;
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_AGGREGATE_OP_H_
