#include "src/server/cursor.h"

#include <utility>

#include "src/server/query_service.h"

namespace magicdb {

Cursor::~Cursor() {
  if (state_ != nullptr && !state_->closed) {
    Close();  // abandoned cursor: cancel + drain + release, status dropped
  }
}

Cursor::Cursor(Cursor&& other) noexcept : state_(std::move(other.state_)) {
  other.state_ = nullptr;
}

Cursor& Cursor::operator=(Cursor&& other) noexcept {
  if (this != &other) {
    if (state_ != nullptr && !state_->closed) Close();
    state_ = std::move(other.state_);
    other.state_ = nullptr;
  }
  return *this;
}

StatusOr<std::vector<Tuple>> Cursor::Fetch(int64_t max_rows) {
  if (state_ == nullptr) {
    return Status::InvalidArgument("Fetch on an empty cursor");
  }
  return state_->service->FetchFromCursor(state_.get(), max_rows);
}

bool Cursor::done() const {
  return state_ == nullptr || state_->saw_eof || state_->closed ||
         (state_->sink.finished() && !state_->sink.final_status().ok());
}

int64_t Cursor::peak_buffered_rows() const {
  return state_ == nullptr ? 0 : state_->sink.peak_queued_rows();
}

int64_t Cursor::producer_parks() const {
  return state_ == nullptr ? 0 : state_->sink.producer_parks();
}

Status Cursor::Close() {
  if (state_ == nullptr) return Status::OK();
  return state_->service->CloseCursor(state_.get());
}

}  // namespace magicdb
