#include "src/server/query_service.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <sstream>
#include <thread>

#include "src/parallel/parallel_exec.h"

namespace magicdb {

namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedUs(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start)
      .count();
}

/// Control block of one cooperatively scheduled sequential query. The
/// Volcano state (root/ctx/rows/opened) is touched only by the currently
/// running pump task; successive tasks are ordered through the pool's queue
/// locks, so no extra synchronization is needed for it. `done`/`status` are
/// the caller handshake, guarded by `mu`.
struct PumpState {
  Operator* root = nullptr;
  ExecContext* ctx = nullptr;
  std::vector<Tuple>* rows = nullptr;
  int64_t quantum = 1024;
  ThreadPool* pool = nullptr;
  Counter* quanta = nullptr;

  bool opened = false;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
};

void SubmitPump(const std::shared_ptr<PumpState>& st);

/// One scheduler quantum: open on first entry, pump up to `quantum` rows,
/// then either finish (eof/error, Close, signal the caller) or yield the
/// worker by re-enqueueing at the back of the pool's queue so concurrently
/// admitted queries interleave.
void RunQuantum(const std::shared_ptr<PumpState>& st) {
  st->quanta->Increment();
  Status status = st->ctx->CheckCancelled();
  bool eof = false;
  if (status.ok() && !st->opened) {
    status = st->root->Open(st->ctx);
    st->opened = status.ok();
  }
  if (status.ok()) {
    for (int64_t i = 0; i < st->quantum; ++i) {
      Tuple t;
      status = st->root->Next(&t, &eof);
      if (!status.ok() || eof) break;
      st->rows->push_back(std::move(t));
    }
  }
  if (status.ok() && eof) {
    status = st->root->Close();
  }
  if (!status.ok() || eof) {
    std::lock_guard<std::mutex> lock(st->mu);
    st->status = std::move(status);
    st->done = true;
    st->cv.notify_all();
    return;
  }
  SubmitPump(st);
}

void SubmitPump(const std::shared_ptr<PumpState>& st) {
  st->pool->Submit([st] { RunQuantum(st); });
}

/// Fallback reasons become metric label values: the plan-specific suffix
/// after ':' is dropped (e.g. "unsupported operator in pipeline: Sort(...)")
/// so cardinality stays bounded, then lowercased with non-alphanumerics
/// collapsed to '_'.
std::string SanitizeReasonLabel(const std::string& reason) {
  std::string label = reason.substr(0, reason.find(':'));
  for (char& c : label) {
    c = std::isalnum(static_cast<unsigned char>(c))
            ? static_cast<char>(
                  std::tolower(static_cast<unsigned char>(c)))
            : '_';
  }
  return label;
}

const char kFallbackMetricPrefix[] =
    "magicdb_server_parallel_fallbacks_total{reason=";

}  // namespace

std::string ServiceStats::ToString() const {
  std::ostringstream os;
  os << "pool_threads=" << pool_threads << " submitted=" << queries_submitted
     << " admitted=" << queries_admitted << " completed=" << queries_completed
     << " failed=" << queries_failed << " cancelled=" << queries_cancelled
     << " deadline_exceeded=" << deadlines_exceeded
     << " plan_cache_hits=" << plan_cache_hits
     << " plan_cache_misses=" << plan_cache_misses
     << " instance_reuses=" << plan_instance_reuses
     << " sched_quanta=" << sched_quanta
     << " morsels_stolen=" << morsels_stolen << " ddl_epoch=" << ddl_epoch
     << " parallel_fallbacks=" << parallel_fallbacks;
  for (const auto& [reason, count] : parallel_fallback_reasons) {
    os << " fallback[" << reason << "]=" << count;
  }
  return os.str();
}

QueryService::QueryService(Database* db, const QueryServiceOptions& options)
    : db_(db),
      options_(options),
      plan_cache_(options.plan_cache_entries,
                  options.plan_cache_instances_per_entry) {
  int threads = options_.pool_threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  if (options_.max_concurrent_queries <= 0) {
    options_.max_concurrent_queries = 2 * threads;
  }
  if (options_.scheduler_quantum_rows <= 0) {
    options_.scheduler_quantum_rows = 1024;
  }

  queries_submitted_ =
      metrics_.counter("magicdb_server_queries_submitted_total");
  queries_admitted_ = metrics_.counter("magicdb_server_queries_admitted_total");
  queries_completed_ =
      metrics_.counter("magicdb_server_queries_completed_total");
  queries_failed_ = metrics_.counter("magicdb_server_queries_failed_total");
  queries_cancelled_ =
      metrics_.counter("magicdb_server_queries_cancelled_total");
  deadlines_exceeded_ =
      metrics_.counter("magicdb_server_deadline_exceeded_total");
  plan_cache_hits_ = metrics_.counter("magicdb_server_plan_cache_hits_total");
  plan_cache_misses_ =
      metrics_.counter("magicdb_server_plan_cache_misses_total");
  plan_instance_reuses_ =
      metrics_.counter("magicdb_server_plan_instance_reuses_total");
  sched_quanta_ = metrics_.counter("magicdb_server_sched_quanta_total");
  morsels_stolen_ = metrics_.counter("magicdb_server_morsels_stolen_total");
  parallel_fallbacks_ =
      metrics_.counter("magicdb_server_parallel_fallbacks_total");
  admission_wait_us_ = metrics_.histogram("magicdb_server_admission_wait_us");
  query_latency_us_ = metrics_.histogram("magicdb_server_query_latency_us");
}

QueryService::~QueryService() {
  // Drain in-flight work before members (pool first in reverse order of
  // declaration would destroy metrics while tasks still run).
  pool_->WaitIdle();
}

std::unique_ptr<Session> QueryService::CreateSession() {
  const int64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Session>(
      new Session(this, id, *db_->mutable_optimizer_options()));
}

Status QueryService::Execute(const std::string& ddl) {
  std::unique_lock<std::shared_mutex> lock(ddl_mu_);
  return db_->Execute(ddl);
}

Status QueryService::LoadRows(const std::string& table,
                              std::vector<Tuple> rows) {
  std::unique_lock<std::shared_mutex> lock(ddl_mu_);
  return db_->LoadRows(table, std::move(rows));
}

Status QueryService::ValidateSelect(const std::string& sql) {
  std::shared_lock<std::shared_mutex> lock(ddl_mu_);
  return db_->BindSelect(sql).status();
}

StatusOr<std::string> QueryService::Explain(const std::string& sql,
                                            const OptimizerOptions& options) {
  std::shared_lock<std::shared_mutex> lock(ddl_mu_);
  MAGICDB_ASSIGN_OR_RETURN(PlannedSelect planned,
                           db_->PlanSelect(sql, options));
  return planned.explain;
}

Status QueryService::Admit(int gang_slots, const CancelToken* token) {
  const Clock::time_point start = Clock::now();
  std::unique_lock<std::mutex> lock(admit_mu_);
  const uint64_t ticket = next_ticket_++;
  admit_queue_.push_back(ticket);
  const int gang_capacity = pool_->size();
  auto can_run = [&] {
    return admit_queue_.front() == ticket &&
           active_queries_ < options_.max_concurrent_queries &&
           used_gang_slots_ + gang_slots <= gang_capacity;
  };
  while (!can_run()) {
    if (token != nullptr) {
      Status s = token->Check();
      if (!s.ok()) {
        // Abandon the ticket; whoever is behind us may now be at the head.
        admit_queue_.erase(
            std::find(admit_queue_.begin(), admit_queue_.end(), ticket));
        admit_cv_.notify_all();
        return s;
      }
    }
    // Bounded wait so a queued query notices its deadline firing even when
    // nothing releases capacity.
    admit_cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
  admit_queue_.pop_front();
  active_queries_ += 1;
  used_gang_slots_ += gang_slots;
  // The next waiter may need no gang slots and still fit.
  admit_cv_.notify_all();
  admission_wait_us_->Observe(ElapsedUs(start));
  return Status::OK();
}

void QueryService::Release(int gang_slots) {
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    active_queries_ -= 1;
    used_gang_slots_ -= gang_slots;
  }
  admit_cv_.notify_all();
}

Status QueryService::RunCooperative(Operator* root, ExecContext* ctx,
                                    std::vector<Tuple>* rows) {
  auto st = std::make_shared<PumpState>();
  st->root = root;
  st->ctx = ctx;
  st->rows = rows;
  st->quantum = options_.scheduler_quantum_rows;
  st->pool = pool_.get();
  st->quanta = sched_quanta_;
  SubmitPump(st);
  std::unique_lock<std::mutex> lock(st->mu);
  st->cv.wait(lock, [&] { return st->done; });
  return st->status;
}

StatusOr<QueryResult> QueryService::Query(Session* session,
                                          const std::string& sql,
                                          const ExecOptions& exec) {
  queries_submitted_->Increment();
  const Clock::time_point start = Clock::now();

  CancelTokenPtr token = exec.cancel_token;
  // Zero = no deadline; negative expires immediately (SetTimeout semantics).
  if (exec.timeout.count() != 0) {
    if (token == nullptr) token = std::make_shared<CancelToken>();
    token->SetTimeout(
        std::chrono::duration_cast<std::chrono::nanoseconds>(exec.timeout));
  }

  const int effective_dop = std::clamp(exec.dop, 1, pool_->size());
  const int gang_slots = effective_dop > 1 ? effective_dop : 0;

  Status admitted = Admit(gang_slots, token.get());
  auto classify_failure = [&](const Status& s) {
    if (s.code() == StatusCode::kCancelled) {
      queries_cancelled_->Increment();
    } else if (s.code() == StatusCode::kDeadlineExceeded) {
      deadlines_exceeded_->Increment();
    }
    queries_failed_->Increment();
    query_latency_us_->Observe(ElapsedUs(start));
  };
  if (!admitted.ok()) {
    classify_failure(admitted);
    return admitted;
  }
  queries_admitted_->Increment();

  StatusOr<QueryResult> result = [&] {
    std::shared_lock<std::shared_mutex> lock(ddl_mu_);
    return QueryAdmitted(session, sql, exec, token, effective_dop);
  }();
  Release(gang_slots);

  if (!result.ok()) {
    classify_failure(result.status());
    return result;
  }
  queries_completed_->Increment();
  query_latency_us_->Observe(ElapsedUs(start));
  return result;
}

StatusOr<QueryResult> QueryService::QueryAdmitted(Session* session,
                                                  const std::string& sql,
                                                  const ExecOptions& exec,
                                                  const CancelTokenPtr& token,
                                                  int effective_dop) {
  const OptimizerOptions& opts = session->options();
  const int64_t epoch = db_->catalog()->ddl_epoch();
  const std::string key = OptimizerOptionsFingerprint(opts) + "\n" + sql;

  CachedPlanMeta meta;
  OpPtr instance;
  // Parallel queries never reuse pooled instances (they need fresh replicas
  // for shared-state wiring), so leave the pool untouched for them.
  const bool want_instance = effective_dop == 1;
  const bool hit = plan_cache_.Lookup(key, epoch, &meta,
                                      want_instance ? &instance : nullptr);
  if (hit) {
    plan_cache_hits_->Increment();
  } else {
    plan_cache_misses_->Increment();
    MAGICDB_ASSIGN_OR_RETURN(PlannedSelect planned, db_->PlanSelect(sql, opts));
    meta.bound = planned.bound;
    meta.schema = planned.schema;
    meta.explain = planned.explain;
    meta.est_cost = planned.est_cost;
    meta.est_rows = planned.est_rows;
    meta.filter_joins = planned.filter_joins;
    meta.optimizer_stats = planned.optimizer_stats;
    plan_cache_.Insert(key, epoch, meta);
    if (want_instance) instance = std::move(planned.root);
  }

  QueryResult result;
  result.schema = meta.schema;
  result.explain = meta.explain;
  result.est_cost = meta.est_cost;
  result.est_rows = meta.est_rows;
  result.filter_joins = meta.filter_joins;
  result.optimizer_stats = meta.optimizer_stats;

  const bool has_limit = meta.bound.limit >= 0;

  if (effective_dop > 1) {
    // Mirror Database::ExecuteParallel on the shared pool: plan isomorphic
    // replicas from the cached bound plan (skipping parse+bind on hits).
    std::vector<OpPtr> replicas;
    MAGICDB_ASSIGN_OR_RETURN(PlannedSelect first, db_->PlanBound(meta.bound,
                                                                 opts));
    replicas.push_back(std::move(first.root));
    if (!has_limit &&
        ParallelExecutor::UnsafeReason(*replicas[0]).empty()) {
      for (int w = 1; w < effective_dop; ++w) {
        MAGICDB_ASSIGN_OR_RETURN(PlannedSelect replica,
                                 db_->PlanBound(meta.bound, opts));
        replicas.push_back(std::move(replica.root));
      }
    }
    ParallelExecutor executor(has_limit ? 1 : effective_dop);
    ParallelRunOptions run_options;
    run_options.shared_pool = pool_.get();
    run_options.cancel_token = token;
    MAGICDB_ASSIGN_OR_RETURN(
        ParallelRunResult run,
        executor.Run(std::move(replicas), opts.memory_budget_bytes,
                     run_options));
    result.rows = std::move(run.rows);
    result.counters = run.counters;
    result.used_dop = run.used_dop;
    result.parallel_fallback_reason =
        has_limit ? "LIMIT clause" : std::move(run.fallback_reason);
    if (result.used_dop < effective_dop) {
      RecordParallelFallback(result.parallel_fallback_reason);
    }
    if (run.has_filter_join) {
      result.filter_join_measured.push_back(run.filter_join_measured);
    }
    return result;
  }

  // Sequential path: reuse a pooled instance when one was available,
  // otherwise instantiate from the cached bound plan.
  if (instance != nullptr) {
    if (hit) plan_instance_reuses_->Increment();
  } else {
    MAGICDB_ASSIGN_OR_RETURN(PlannedSelect planned,
                             db_->PlanBound(meta.bound, opts));
    instance = std::move(planned.root);
  }

  ExecContext ctx;
  ctx.set_memory_budget_bytes(opts.memory_budget_bytes);
  ctx.set_cancel_token(token);
  MAGICDB_RETURN_IF_ERROR(RunCooperative(instance.get(), &ctx, &result.rows));
  result.counters = ctx.counters();
  result.used_dop = 1;
  CollectFilterJoinMeasured(*instance, &result.filter_join_measured);
  // The tree fully re-initializes in Open(), so it can serve the next
  // execution of the same statement.
  plan_cache_.CheckIn(key, epoch, std::move(instance));
  return result;
}

void QueryService::RecordParallelFallback(const std::string& reason) {
  parallel_fallbacks_->Increment();
  metrics_
      .counter(kFallbackMetricPrefix + SanitizeReasonLabel(reason) + "}")
      ->Increment();
}

ServiceStats QueryService::StatsSnapshot() const {
  morsels_stolen_->Set(pool_->steal_count());
  ServiceStats s;
  s.pool_threads = pool_->size();
  s.queries_submitted = queries_submitted_->Value();
  s.queries_admitted = queries_admitted_->Value();
  s.queries_completed = queries_completed_->Value();
  s.queries_failed = queries_failed_->Value();
  s.queries_cancelled = queries_cancelled_->Value();
  s.deadlines_exceeded = deadlines_exceeded_->Value();
  s.plan_cache_hits = plan_cache_hits_->Value();
  s.plan_cache_misses = plan_cache_misses_->Value();
  s.plan_instance_reuses = plan_instance_reuses_->Value();
  s.sched_quanta = sched_quanta_->Value();
  s.morsels_stolen = morsels_stolen_->Value();
  s.ddl_epoch = db_->catalog()->ddl_epoch();
  s.parallel_fallbacks = parallel_fallbacks_->Value();
  const std::string prefix = kFallbackMetricPrefix;
  for (const auto& [name, value] : metrics_.CounterValues()) {
    if (name.size() > prefix.size() + 1 &&
        name.compare(0, prefix.size(), prefix) == 0) {
      const std::string reason =
          name.substr(prefix.size(), name.size() - prefix.size() - 1);
      s.parallel_fallback_reasons[reason] = value;
    }
  }
  s.admission_wait_us_p50 = admission_wait_us_->Quantile(0.50);
  s.admission_wait_us_p95 = admission_wait_us_->Quantile(0.95);
  s.query_latency_us_p50 = query_latency_us_->Quantile(0.50);
  s.query_latency_us_p95 = query_latency_us_->Quantile(0.95);
  s.query_latency_us_p99 = query_latency_us_->Quantile(0.99);
  return s;
}

std::string QueryService::MetricsText() const {
  morsels_stolen_->Set(pool_->steal_count());
  return metrics_.TextDump();
}

}  // namespace magicdb
