#include "src/server/query_service.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "src/common/backoff.h"
#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/exec/exec_context.h"
#include "src/exec/row_batch.h"
#include "src/parallel/parallel_exec.h"
#include "src/spill/spill_manager.h"

namespace magicdb {

namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedUs(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start)
      .count();
}

/// Fallback reasons become metric label values: the plan-specific suffix
/// after ':' is dropped (e.g. "unsupported operator in pipeline: Sort(...)")
/// so cardinality stays bounded, then lowercased with non-alphanumerics
/// collapsed to '_'.
std::string SanitizeReasonLabel(const std::string& reason) {
  std::string label = reason.substr(0, reason.find(':'));
  for (char& c : label) {
    c = std::isalnum(static_cast<unsigned char>(c))
            ? static_cast<char>(
                  std::tolower(static_cast<unsigned char>(c)))
            : '_';
  }
  return label;
}

const char kFallbackMetricPrefix[] =
    "magicdb_server_parallel_fallbacks_total{reason=";
const char kReoptMetricPrefix[] =
    "magicdb_server_reoptimizations_total{reason=";
const char kCacheHitBackendPrefix[] =
    "magicdb_server_plan_cache_hits_total{backend=";
const char kCacheMissBackendPrefix[] =
    "magicdb_server_plan_cache_misses_total{backend=";
const char kShedReasonPrefix[] = "magicdb_server_sheds_total{reason=";
const char kWatchdogReasonPrefix[] =
    "magicdb_server_watchdog_cancels_total{reason=";
const char kAdmittedPriorityPrefix[] =
    "magicdb_server_queries_admitted_total{priority=";

/// Virtual-time advance per admission is kVirtualTimeScale / weight, so a
/// lane with twice the weight is served twice as often under saturation.
/// The scale only needs to dwarf the largest weight; 2^20 over int64 lanes
/// cannot overflow within any realistic admission count.
constexpr int64_t kVirtualTimeScale = 1 << 20;

int PriorityIndex(SessionPriority priority) {
  return static_cast<int>(priority);
}

}  // namespace

/// Control block of one cursor's producing pipeline. The Volcano state
/// (tree/ctx/opened) is touched only by the currently running pump quantum;
/// successive quanta are ordered through the pool's queue locks (and, across
/// a park, through the sink's mutex), so it needs no extra synchronization.
///
/// Two producer flavors share this code path:
///   - sequential stream: `tree` is the live plan instance; each quantum
///     performs real query work, so it re-validates the catalog epoch under
///     the DDL lock and the final counters come from `ctx` at end of stream.
///   - parallel staged stream: the worker gang already ran (inside Open,
///     under the DDL lock); `tree` is a GatherOp draining pre-staged rows.
///     Pumping it performs no catalog access (the plan is effectively
///     pinned across DDL) and charges nothing — `counters_preset` marks
///     that the cursor's final counters were fixed at Open time.
struct StreamProducer {
  std::shared_ptr<CursorState> cursor;
  OpPtr tree;
  ExecContext ctx;
  bool opened = false;
  /// Vectorized pump: the reusable batch the quantum loop pulls into when
  /// ctx.batch_size() > 0 (lazily allocated on the first quantum).
  std::unique_ptr<RowBatch> row_batch;
  /// Final counters/FilterJoin phases were stored in the cursor at Open
  /// (parallel staged execution); FinishProducer must not overwrite them.
  bool counters_preset = false;
  /// Re-check the catalog DDL epoch every quantum (sequential streams);
  /// a mismatch fails the stream with FailedPrecondition.
  bool check_epoch = false;
  /// Return `tree` to the plan cache on clean end of stream.
  bool check_in = false;
  /// Fold the query's exact cardinality observations into the database's
  /// FeedbackStore on clean end of stream (ExecOptions::persist_feedback).
  bool persist_feedback = false;
};

std::string ServiceStats::ToString() const {
  std::ostringstream os;
  os << "pool_threads=" << pool_threads << " submitted=" << queries_submitted
     << " admitted=" << queries_admitted << " completed=" << queries_completed
     << " failed=" << queries_failed << " cancelled=" << queries_cancelled
     << " deadline_exceeded=" << deadlines_exceeded
     << " resource_exhausted=" << queries_resource_exhausted
     << " ddl_retries=" << query_ddl_retries
     << " active_queries=" << active_queries
     << " used_gang_slots=" << used_gang_slots
     << " plan_cache_hits=" << plan_cache_hits
     << " plan_cache_misses=" << plan_cache_misses
     << " instance_reuses=" << plan_instance_reuses
     << " sched_quanta=" << sched_quanta
     << " morsels_stolen=" << morsels_stolen << " ddl_epoch=" << ddl_epoch
     << " cursors_opened=" << cursors_opened
     << " open_cursors=" << open_cursors << " rows_streamed=" << rows_streamed
     << " producer_parks=" << cursor_producer_parks
     << " cursors_stale=" << cursors_stale
     << " parallel_fallbacks=" << parallel_fallbacks;
  for (const auto& [reason, count] : parallel_fallback_reasons) {
    os << " fallback[" << reason << "]=" << count;
  }
  os << " reoptimizations=" << reoptimizations;
  for (const auto& [reason, count] : reoptimization_reasons) {
    os << " reopt[" << reason << "]=" << count;
  }
  for (const auto& [backend, count] : plan_cache_hits_by_backend) {
    os << " cache_hits[" << backend << "]=" << count;
  }
  for (const auto& [backend, count] : plan_cache_misses_by_backend) {
    os << " cache_misses[" << backend << "]=" << count;
  }
  os << " spill_written=" << spill_bytes_written
     << " spill_read=" << spill_bytes_read
     << " spill_files=" << spill_files_created
     << " spill_partitions=" << spill_partitions_opened
     << " spill_depth_max=" << spill_recursion_depth_max
     << " spilled_queries=" << spilled_queries;
  os << " queued_queries=" << queued_queries << " sheds=" << queries_shed;
  for (const auto& [reason, count] : shed_reasons) {
    os << " shed[" << reason << "]=" << count;
  }
  os << " shed_retries=" << query_shed_retries
     << " watchdog_cancels=" << watchdog_cancels;
  for (const auto& [reason, count] : watchdog_cancel_reasons) {
    os << " watchdog[" << reason << "]=" << count;
  }
  for (const auto& [priority, count] : admitted_by_priority) {
    os << " admitted[" << priority << "]=" << count;
  }
  os << " memory_ceiling_claimed=" << memory_ceiling_claimed_bytes
     << " spill_disk_budget=" << spill_disk_budget_bytes
     << " spill_disk_used=" << spill_disk_used_bytes
     << " spill_disk_rejections=" << spill_disk_rejections
     << " draining=" << (draining ? 1 : 0);
  return os.str();
}

QueryService::QueryService(Database* db, const QueryServiceOptions& options)
    : db_(db),
      options_(options),
      plan_cache_(options.plan_cache_entries,
                  options.plan_cache_instances_per_entry) {
  int threads = options_.pool_threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  if (options_.max_concurrent_queries <= 0) {
    options_.max_concurrent_queries = 2 * threads;
  }
  if (options_.scheduler_quantum_rows <= 0) {
    options_.scheduler_quantum_rows = 1024;
  }
  if (options_.stream_queue_rows <= 0) {
    options_.stream_queue_rows = 8192;
  }
  // Test hooks: a build-script sweep can impose a low default memory limit
  // and a spill area on every service in the process without touching call
  // sites. Honored only where the construction options left the default.
  if (options_.query_memory_limit_bytes == 0) {
    if (const char* env = std::getenv("MAGICDB_TEST_QUERY_MEMORY_LIMIT")) {
      options_.query_memory_limit_bytes = std::strtoll(env, nullptr, 10);
    }
  }
  if (options_.spill_dir.empty()) {
    if (const char* env = std::getenv("MAGICDB_TEST_SPILL_DIR")) {
      options_.spill_dir = env;
    }
  }
  if (options_.default_batch_size < 0) {
    options_.default_batch_size = DefaultExecBatchSize();
  }
  // Same env-hook convention as the limits above: the shed high-water mark
  // applies only where construction left the default, and a negative value
  // explicitly opts a service out of the sweep.
  if (options_.shed_queue_depth == 0) {
    if (const char* env = std::getenv("MAGICDB_TEST_SHED_QUEUE_DEPTH")) {
      options_.shed_queue_depth = static_cast<int>(std::strtol(env, nullptr, 10));
    }
  }
  if (options_.shed_queue_depth < 0) options_.shed_queue_depth = 0;
  if (options_.shed_wait_estimate_us < 0) options_.shed_wait_estimate_us = 0;
  admission_weights_[PriorityIndex(SessionPriority::kHigh)] =
      std::max(1, options_.admission_weight_high);
  admission_weights_[PriorityIndex(SessionPriority::kNormal)] =
      std::max(1, options_.admission_weight_normal);
  admission_weights_[PriorityIndex(SessionPriority::kBackground)] =
      std::max(1, options_.admission_weight_background);
  if (!options_.spill_dir.empty()) {
    SpillConfig spill_config;
    spill_config.dir = options_.spill_dir;
    if (options_.spill_batch_bytes > 0) {
      spill_config.batch_bytes = options_.spill_batch_bytes;
    }
    if (options_.spill_disk_budget_bytes > 0) {
      spill_config.disk_budget_bytes = options_.spill_disk_budget_bytes;
    }
    spill_manager_ = std::make_shared<SpillManager>(spill_config);
  }

  queries_submitted_ =
      metrics_.counter("magicdb_server_queries_submitted_total");
  queries_admitted_ = metrics_.counter("magicdb_server_queries_admitted_total");
  queries_completed_ =
      metrics_.counter("magicdb_server_queries_completed_total");
  queries_failed_ = metrics_.counter("magicdb_server_queries_failed_total");
  queries_cancelled_ =
      metrics_.counter("magicdb_server_queries_cancelled_total");
  deadlines_exceeded_ =
      metrics_.counter("magicdb_server_deadline_exceeded_total");
  queries_resource_exhausted_ =
      metrics_.counter("magicdb_server_queries_resource_exhausted_total");
  query_ddl_retries_ =
      metrics_.counter("magicdb_server_query_ddl_retries_total");
  plan_cache_hits_ = metrics_.counter("magicdb_server_plan_cache_hits_total");
  plan_cache_misses_ =
      metrics_.counter("magicdb_server_plan_cache_misses_total");
  plan_instance_reuses_ =
      metrics_.counter("magicdb_server_plan_instance_reuses_total");
  sched_quanta_ = metrics_.counter("magicdb_server_sched_quanta_total");
  morsels_stolen_ = metrics_.counter("magicdb_server_morsels_stolen_total");
  parallel_fallbacks_ =
      metrics_.counter("magicdb_server_parallel_fallbacks_total");
  reoptimizations_ = metrics_.counter("magicdb_server_reoptimizations_total");
  cursors_opened_ = metrics_.counter("magicdb_server_cursors_opened_total");
  open_cursors_ = metrics_.counter("magicdb_server_open_cursors");
  rows_streamed_ = metrics_.counter("magicdb_server_rows_streamed_total");
  cursor_parks_ =
      metrics_.counter("magicdb_server_cursor_producer_parks_total");
  cursors_stale_ = metrics_.counter("magicdb_server_cursors_stale_total");
  spill_bytes_written_ = metrics_.counter("magicdb_spill_bytes_written_total");
  spill_bytes_read_ = metrics_.counter("magicdb_spill_bytes_read_total");
  spill_files_created_ = metrics_.counter("magicdb_spill_files_created_total");
  spill_partitions_opened_ =
      metrics_.counter("magicdb_spill_partitions_opened_total");
  spill_recursion_depth_max_ =
      metrics_.counter("magicdb_spill_recursion_depth_max");
  spilled_queries_ = metrics_.counter("magicdb_spill_queries_total");
  queries_shed_ = metrics_.counter("magicdb_server_sheds_total");
  query_shed_retries_ =
      metrics_.counter("magicdb_server_query_shed_retries_total");
  watchdog_cancels_ =
      metrics_.counter("magicdb_server_watchdog_cancels_total");
  spill_disk_budget_bytes_ =
      metrics_.counter("magicdb_spill_disk_budget_bytes");
  spill_disk_used_bytes_ = metrics_.counter("magicdb_spill_disk_used_bytes");
  spill_disk_rejections_ =
      metrics_.counter("magicdb_spill_disk_rejections_total");
  memory_ceiling_claimed_bytes_ =
      metrics_.counter("magicdb_server_memory_ceiling_claimed_bytes");
  admission_wait_us_ = metrics_.histogram("magicdb_server_admission_wait_us");
  for (int p = 0; p < kNumSessionPriorities; ++p) {
    const std::string label =
        SessionPriorityName(static_cast<SessionPriority>(p));
    admission_wait_us_by_priority_[p] = metrics_.histogram(
        "magicdb_server_admission_wait_us{priority=" + label + "}");
    admitted_by_priority_[p] =
        metrics_.counter(kAdmittedPriorityPrefix + label + "}");
  }
  query_latency_us_ = metrics_.histogram("magicdb_server_query_latency_us");
  cursor_batch_wait_us_ =
      metrics_.histogram("magicdb_server_cursor_batch_wait_us");
  query_memory_bytes_ = metrics_.histogram("magicdb_server_query_memory_bytes");

  if (options_.watchdog_stall_timeout.count() > 0) {
    if (options_.watchdog_poll_interval.count() <= 0) {
      options_.watchdog_poll_interval = std::max(
          std::chrono::milliseconds(1), options_.watchdog_stall_timeout / 4);
    }
    watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  }
}

QueryService::~QueryService() {
  // Stop the watchdog before tearing anything down; it walks live_queries_.
  if (watchdog_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_thread_.join();
  }
  // Stop admitting, cancel whatever is still producing, then drain in-flight
  // work before members (pool first in reverse order of declaration would
  // destroy metrics while tasks still run).
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    draining_ = true;
  }
  admit_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    for (auto& [id, entry] : live_queries_) {
      entry.state->token->Cancel();
    }
  }
  pool_->WaitIdle();
}

std::unique_ptr<Session> QueryService::CreateSession() {
  return CreateSession(SessionOptions{});
}

std::unique_ptr<Session> QueryService::CreateSession(
    const SessionOptions& session_options) {
  const int64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Session>(new Session(
      this, id, *db_->mutable_optimizer_options(), session_options));
}

Status QueryService::Execute(const std::string& ddl) {
  std::unique_lock<std::shared_mutex> lock(ddl_mu_);
  // Injected fault models DDL failing after it serialized against queries
  // but before any catalog mutation; cached plans must stay valid.
  MAGICDB_FAILPOINT("server.ddl.execute");
  return db_->Execute(ddl);
}

Status QueryService::LoadRows(const std::string& table,
                              std::vector<Tuple> rows) {
  std::unique_lock<std::shared_mutex> lock(ddl_mu_);
  return db_->LoadRows(table, std::move(rows));
}

Status QueryService::ValidateSelect(const std::string& sql) {
  std::shared_lock<std::shared_mutex> lock(ddl_mu_);
  return db_->BindSelect(sql).status();
}

StatusOr<std::string> QueryService::Explain(const std::string& sql,
                                            const OptimizerOptions& options) {
  std::shared_lock<std::shared_mutex> lock(ddl_mu_);
  MAGICDB_ASSIGN_OR_RETURN(PlannedSelect planned,
                           db_->PlanSelect(sql, options));
  return planned.explain;
}

int64_t QueryService::QueuedLocked() const {
  int64_t queued = 0;
  for (const AdmissionLane& lane : admit_lanes_) {
    queued += static_cast<int64_t>(lane.waiters.size());
  }
  return queued;
}

int64_t QueryService::EstimateAdmissionWaitUsLocked() const {
  const int64_t ewma =
      ewma_query_latency_us_.load(std::memory_order_relaxed);
  if (ewma <= 0) return 0;
  // Everyone queued ahead plus this query, divided across the admission
  // slots. Crude, but monotone in queue depth — exactly what a shed
  // threshold needs.
  const int64_t depth = QueuedLocked() + 1;
  return depth * ewma / std::max(1, options_.max_concurrent_queries);
}

void QueryService::RecordShed(const char* reason) {
  queries_shed_->Increment();
  metrics_.counter(kShedReasonPrefix + std::string(reason) + "}")->Increment();
}

Status QueryService::MaybeShed(SessionPriority priority) {
  // High priority is never shed: latency-critical clients queue instead,
  // and weighted-fair admission keeps their wait short.
  if (priority == SessionPriority::kHigh) return Status::OK();
#ifdef MAGICDB_FAILPOINTS
  {
    Status injected = MAGICDB_FAILPOINT_EVAL("admission.shed");
    if (!injected.ok()) {
      RecordShed("failpoint");
      return injected;
    }
  }
#endif
  const char* reason = nullptr;
  int64_t est_wait_us = 0;
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    const int64_t depth = QueuedLocked();
    est_wait_us = EstimateAdmissionWaitUsLocked();
    if (options_.shed_queue_depth > 0 && depth >= options_.shed_queue_depth) {
      reason = "queue_depth";
    } else if (options_.shed_wait_estimate_us > 0 &&
               est_wait_us >= options_.shed_wait_estimate_us) {
      reason = "est_wait";
    }
  }
  if (reason == nullptr) return Status::OK();
  RecordShed(reason);
  // The hint tells the client when retrying is plausible: the estimated
  // drain time, clamped so a cold estimator still produces a usable delay
  // and a pathological one cannot park clients for minutes.
  const int64_t hint_us = std::clamp<int64_t>(est_wait_us, 100, 1000000);
  return Status::Unavailable(
      std::string("server overloaded (") + reason +
      "): admission queue is saturated; " + FormatRetryAfterHint(hint_us));
}

int QueryService::PickClassLocked() const {
  int best = -1;
  for (int p = 0; p < kNumSessionPriorities; ++p) {
    if (admit_lanes_[p].waiters.empty()) continue;
    if (best < 0 ||
        admit_lanes_[p].virtual_time < admit_lanes_[best].virtual_time ||
        (admit_lanes_[p].virtual_time == admit_lanes_[best].virtual_time &&
         admit_lanes_[p].waiters.front() <
             admit_lanes_[best].waiters.front())) {
      best = p;
    }
  }
  return best;
}

Status QueryService::Admit(SessionPriority priority, int gang_slots,
                           int64_t memory_claim, const CancelToken* token) {
  const Clock::time_point start = Clock::now();
  const int pri = PriorityIndex(priority);
  std::unique_lock<std::mutex> lock(admit_mu_);
  if (draining_) {
    // No retry hint: a draining service will not come back, so Query()'s
    // shed-retry loop must surface this instead of spinning on it.
    return Status::Unavailable("service is draining; not accepting queries");
  }
  const uint64_t ticket = next_ticket_++;
  AdmissionLane& lane = admit_lanes_[pri];
  if (lane.waiters.empty()) {
    // (Re)joining lanes inherit the busiest competitor's progress so a lane
    // that idled cannot burn banked credit starving everyone else; when the
    // whole system idles, restart all clocks from zero.
    int64_t min_busy = -1;
    for (int p = 0; p < kNumSessionPriorities; ++p) {
      if (p == pri || admit_lanes_[p].waiters.empty()) continue;
      if (min_busy < 0 || admit_lanes_[p].virtual_time < min_busy) {
        min_busy = admit_lanes_[p].virtual_time;
      }
    }
    if (min_busy < 0) {
      for (AdmissionLane& l : admit_lanes_) l.virtual_time = 0;
    } else {
      lane.virtual_time = std::max(lane.virtual_time, min_busy);
    }
  }
  lane.waiters.push_back(ticket);
  const int gang_capacity = pool_->size();
  // Weighted-fair head-of-line semantics: only the candidate lane's head
  // may admit, and it blocks everyone until its ticket, gang slots, and
  // memory claim all fit — so a wide gang or fat query is delayed, never
  // starved by smaller queries slipping past it.
  auto can_run = [&] {
    return lane.waiters.front() == ticket && PickClassLocked() == pri &&
           active_queries_ < options_.max_concurrent_queries &&
           used_gang_slots_ + gang_slots <= gang_capacity &&
           (options_.service_memory_ceiling_bytes <= 0 || memory_claim <= 0 ||
            memory_ceiling_claimed_ + memory_claim <=
                options_.service_memory_ceiling_bytes);
  };
  while (!can_run()) {
    Status s;
    if (draining_) {
      s = Status::Unavailable("service is draining; not accepting queries");
    } else if (token != nullptr) {
      s = token->Check();
    }
    if (!s.ok()) {
      // Abandon the ticket; whoever is behind us may now be at the head.
      lane.waiters.erase(
          std::find(lane.waiters.begin(), lane.waiters.end(), ticket));
      admit_cv_.notify_all();
      return s;
    }
    // Bounded wait so a queued query notices its deadline firing even when
    // nothing releases capacity.
    admit_cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
  lane.waiters.pop_front();
  lane.virtual_time += kVirtualTimeScale / admission_weights_[pri];
  active_queries_ += 1;
  used_gang_slots_ += gang_slots;
  if (memory_claim > 0) memory_ceiling_claimed_ += memory_claim;
  // The next waiter may need no gang slots and still fit.
  admit_cv_.notify_all();
  const int64_t waited_us = ElapsedUs(start);
  admission_wait_us_->Observe(waited_us);
  admission_wait_us_by_priority_[pri]->Observe(waited_us);
  admitted_by_priority_[pri]->Increment();
  return Status::OK();
}

void QueryService::ReleaseGangSlots(int gang_slots) {
  if (gang_slots == 0) return;
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    used_gang_slots_ -= gang_slots;
  }
  admit_cv_.notify_all();
}

void QueryService::ReleaseTicket(int64_t memory_claim) {
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    active_queries_ -= 1;
    if (memory_claim > 0) memory_ceiling_claimed_ -= memory_claim;
  }
  admit_cv_.notify_all();
}

uint64_t QueryService::RegisterLiveQuery(
    const std::shared_ptr<CursorState>& state) {
  std::lock_guard<std::mutex> lock(live_mu_);
  const uint64_t id = next_watch_id_++;
  LiveQueryEntry& entry = live_queries_[id];
  entry.state = state;
  entry.last_advance = Clock::now();
  return id;
}

void QueryService::UnregisterLiveQuery(uint64_t watch_id) {
  std::lock_guard<std::mutex> lock(live_mu_);
  live_queries_.erase(watch_id);
}

void QueryService::WatchdogLoop() {
  const auto stall = options_.watchdog_stall_timeout;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mu_);
      watchdog_cv_.wait_for(lock, options_.watchdog_poll_interval,
                            [this] { return watchdog_stop_; });
      if (watchdog_stop_) return;
    }
    std::lock_guard<std::mutex> lock(live_mu_);
    const Clock::time_point now = Clock::now();
    for (auto& [id, entry] : live_queries_) {
      CursorState* state = entry.state.get();
      // A finished stream is waiting on its consumer, and a parked producer
      // is waiting on backpressure — neither is stalled execution. Reset
      // the stall clock so time spent there never counts.
      if (state->sink.finished() || state->sink.producer_parked()) {
        entry.last_advance = now;
        continue;
      }
      const int64_t beat =
          state->progress_heartbeat != nullptr
              ? state->progress_heartbeat->load(std::memory_order_relaxed)
              : 0;
      if (beat != entry.last_heartbeat) {
        entry.last_heartbeat = beat;
        entry.last_advance = now;
        continue;
      }
      if (entry.cancelled_by_watchdog || now - entry.last_advance < stall) {
        continue;
      }
      // No progress for a full stall timeout: kill the query. CancelStalled
      // only transitions a live token, so an already-cancelled or
      // deadline-expired query keeps its own classification.
      MAGICDB_FAILPOINT_HIT("watchdog.fire");
      state->token->CancelStalled();
      entry.cancelled_by_watchdog = true;
      watchdog_cancels_->Increment();
      const char* reason = state->sink.total_rows_pushed() == 0
                               ? "before_first_row"
                               : "mid_stream";
      metrics_.counter(kWatchdogReasonPrefix + std::string(reason) + "}")
          ->Increment();
    }
  }
}

Status QueryService::Shutdown(std::chrono::milliseconds grace) {
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    draining_ = true;
  }
  admit_cv_.notify_all();

  // Phase 1: let in-flight queries finish naturally (clients are expected
  // to drain and close their cursors).
  auto wait_for_idle = [&](Clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(admit_mu_);
    while (active_queries_ > 0 && Clock::now() < deadline) {
      admit_cv_.wait_for(lock, std::chrono::milliseconds(2));
    }
    return active_queries_ == 0;
  };
  bool idle = wait_for_idle(Clock::now() + grace);

  // Phase 2: cancel the stragglers' tokens and give their clients one more
  // grace period to observe the cancellation and close.
  if (!idle) {
    {
      std::lock_guard<std::mutex> lock(live_mu_);
      for (auto& [id, entry] : live_queries_) {
        entry.state->token->Cancel();
      }
    }
    idle = wait_for_idle(Clock::now() + grace);
  }
  pool_->WaitIdle();

  std::lock_guard<std::mutex> lock(admit_mu_);
  if (active_queries_ != 0) {
    return Status::DeadlineExceeded(
        "drain incomplete: " + std::to_string(active_queries_) +
        " cursors still open after cancellation; their clients must Close()");
  }
  // A drained service must hold no residual capacity — the same invariant
  // the chaos suite asserts after every injected fault.
  MAGICDB_CHECK(used_gang_slots_ == 0);
  MAGICDB_CHECK(memory_ceiling_claimed_ == 0);
  return Status::OK();
}

void QueryService::SubmitProducer(const std::shared_ptr<StreamProducer>& p) {
  pool_->Submit([this, p] { PumpQuantum(p); });
}

void QueryService::PumpQuantum(const std::shared_ptr<StreamProducer>& p) {
  CursorState* c = p->cursor.get();
  // Backpressure before anything else: on a full queue the producer parks —
  // stores its resume closure in the sink and returns the worker without
  // rescheduling. The consumer's Fetch re-submits it after draining below
  // the high-water mark.
  if (!c->sink.ReserveOrPark([this, p] {
        // Delay-injection site in the consumer-driven resume path; runs on
        // the Fetch (client) thread just before the producer is re-queued.
        MAGICDB_FAILPOINT_HIT("server.sink.resume");
        SubmitProducer(p);
      })) {
    cursor_parks_->Increment();
    return;
  }
  sched_quanta_->Increment();
  Status status = c->token->Check();
  bool eof = false;
  std::vector<Tuple> batch;
  if (status.ok()) {
    // A quantum — not the whole query — is the DDL read-side critical
    // section; that is what lets DDL run while cursors sit open. The epoch
    // check turns a catalog change under a live sequential stream into a
    // clean stale-plan error instead of reads from replaced objects.
    std::shared_lock<std::shared_mutex> lock(ddl_mu_);
    if (p->check_epoch && db_->catalog()->ddl_epoch() != c->plan_epoch) {
      cursors_stale_->Increment();
      status = Status::FailedPrecondition(
          "plan invalidated by DDL: catalog changed while cursor was open");
    }
    if (status.ok() && !p->opened) {
      status = p->tree->Open(&p->ctx);
      p->opened = status.ok();
    }
    if (status.ok()) {
      if (p->ctx.batch_size() > 0) {
        // Vectorized pump. The pump batch is capped at the scheduler
        // quantum, and another batch is pulled only while a full one still
        // fits, so one quantum never delivers more rows than the
        // tuple-at-a-time pump would — the cursor's peak-buffered-rows
        // bound stays batch-size independent.
        const int64_t cap = std::min<int64_t>(
            p->ctx.batch_size(), options_.scheduler_quantum_rows);
        if (p->row_batch == nullptr) {
          p->row_batch = std::make_unique<RowBatch>(static_cast<int32_t>(cap));
        }
        while (static_cast<int64_t>(batch.size()) + cap <=
               options_.scheduler_quantum_rows) {
          status = p->tree->NextBatch(p->row_batch.get(), &eof);
          if (!status.ok()) break;
          p->row_batch->MoveActiveToTuples(&batch);
          if (eof) break;
        }
      } else {
        for (int64_t i = 0; i < options_.scheduler_quantum_rows; ++i) {
          Tuple t;
          status = p->tree->Next(&t, &eof);
          if (!status.ok() || eof) break;
          batch.push_back(std::move(t));
        }
      }
    }
    if (status.ok() && eof) {
      status = p->tree->Close();
    }
  }
  // A quantum that ran (even to an empty batch or an error) is progress;
  // a parked producer returned above, so parking never feeds the watchdog.
  p->ctx.NoteProgress(static_cast<int64_t>(batch.size()) + 1);
  if (!batch.empty()) {
    Status push_status = MAGICDB_FAILPOINT_EVAL("server.sink.push");
    if (push_status.ok()) push_status = c->sink.Push(std::move(batch));
    // A failed push (injected fault, or the queued rows breaching the
    // memory limit) fails the stream; an earlier execution error wins.
    if (status.ok() && !push_status.ok()) status = push_status;
  }
  if (!status.ok() || eof) {
    FinishProducer(p, std::move(status));
    return;
  }
  // Yield: re-enqueue at the back of the pool's queue so concurrently
  // admitted queries interleave at quantum granularity.
  SubmitProducer(p);
}

void QueryService::FinishProducer(const std::shared_ptr<StreamProducer>& p,
                                  Status status) {
  CursorState* c = p->cursor.get();
  if (!p->counters_preset) {
    c->final_counters = p->ctx.counters();
    c->filter_join_measured.clear();
    CollectFilterJoinMeasured(*p->tree, &c->filter_join_measured);
  }
  if (status.ok() && p->check_in && !c->cache_key.empty()) {
    // The tree fully re-initializes in Open(), so it can serve the next
    // execution of the same statement. CheckIn refuses stale epochs.
    plan_cache_.CheckIn(c->cache_key, c->plan_epoch, std::move(p->tree));
  }
  if (status.ok() && p->persist_feedback &&
      p->ctx.cardinality_feedback() != nullptr) {
    // Cross-query learning: fold this query's exact observations into the
    // store so later plans (cache-keyed by the store's version) use them.
    db_->feedback_store()->Fold(p->ctx.cardinality_feedback()->Snapshot());
  }
  // Finish last: it publishes the terminal state (counters included — the
  // sink's mutex orders the handoff) to the consumer.
  c->sink.Finish(std::move(status));
}

StatusOr<Cursor> QueryService::Open(Session* session, const std::string& sql,
                                    const ExecOptions& exec) {
  // Shedding happens before the query counts as submitted: a shed is a
  // refusal at the door, visible in sheds_total (and the per-reason
  // family) but never in the submitted/completed/failed ledger — retried
  // sheds must not inflate the exact-count accounting invariants.
  Status shed = MaybeShed(session->priority());
  if (!shed.ok()) return shed;

  queries_submitted_->Increment();
  const Clock::time_point start = Clock::now();

  // A cursor always carries a token: Close() cancels it to unwind any
  // remaining production. Zero timeout = no deadline; negative expires
  // immediately (SetTimeout semantics).
  CancelTokenPtr token = exec.cancel_token;
  if (token == nullptr) token = std::make_shared<CancelToken>();
  if (exec.timeout.count() != 0) {
    token->SetTimeout(
        std::chrono::duration_cast<std::chrono::nanoseconds>(exec.timeout));
  }

  const int effective_dop = std::clamp(exec.dop, 1, pool_->size());
  const int gang_slots = effective_dop > 1 ? effective_dop : 0;

  auto classify_failure = [&](const Status& s) {
    if (s.code() == StatusCode::kCancelled) {
      queries_cancelled_->Increment();
    } else if (s.code() == StatusCode::kDeadlineExceeded) {
      deadlines_exceeded_->Increment();
    } else if (s.code() == StatusCode::kResourceExhausted) {
      queries_resource_exhausted_->Increment();
    }
    queries_failed_->Increment();
    query_latency_us_->Observe(ElapsedUs(start));
  };

  // The query's claim against the service memory ceiling is its effective
  // memory limit — the most it can retain. Ungoverned queries claim nothing.
  const int64_t memory_limit = exec.memory_limit_bytes != 0
                                   ? exec.memory_limit_bytes
                                   : options_.query_memory_limit_bytes;
  const int64_t memory_claim = memory_limit > 0 ? memory_limit : 0;
  if (options_.service_memory_ceiling_bytes > 0 &&
      memory_claim > options_.service_memory_ceiling_bytes) {
    Status too_big = Status::ResourceExhausted(
        "query memory limit " + std::to_string(memory_claim) +
        " exceeds the service memory ceiling " +
        std::to_string(options_.service_memory_ceiling_bytes) +
        " bytes; it could never be admitted");
    classify_failure(too_big);
    return too_big;
  }

  Status admitted =
      Admit(session->priority(), gang_slots, memory_claim, token.get());
  if (!admitted.ok()) {
    classify_failure(admitted);
    return admitted;
  }
  queries_admitted_->Increment();

  StatusOr<Cursor> cursor =
      OpenAdmitted(session, sql, exec, token, effective_dop, gang_slots);
  if (!cursor.ok()) {
    ReleaseTicket(memory_claim);
    classify_failure(cursor.status());
    return cursor;
  }
  cursor->state_->start_time = start;
  cursors_opened_->Increment();
  open_cursors_->Add(1);
  return cursor;
}

StatusOr<Cursor> QueryService::OpenAdmitted(Session* session,
                                            const std::string& sql,
                                            const ExecOptions& exec,
                                            const CancelTokenPtr& token,
                                            int effective_dop,
                                            int gang_slots) {
  uint64_t watch_id = 0;
  StatusOr<Cursor> result = [&]() -> StatusOr<Cursor> {
    // Planning and the parallel worker gang run under the shared DDL lock;
    // by the time rows stream out, a parallel execution's staged result is
    // already catalog-consistent (its plan is pinned), while a sequential
    // stream re-validates the epoch every quantum.
    std::shared_lock<std::shared_mutex> lock(ddl_mu_);

    const OptimizerOptions& opts = session->options();
    const int64_t epoch = db_->catalog()->ddl_epoch();
    // The effective batch size keys the cache alongside the optimizer
    // options: a pooled instance must never resume with mid-stream batch
    // state from a different execution mode.
    const int64_t effective_batch = exec.batch_size < 0
                                        ? options_.default_batch_size
                                        : exec.batch_size;
    // Cross-query cardinality feedback: plans are built against a snapshot
    // of the database's feedback store, and the store's version keys the
    // cache — a persisting query bumping it invalidates every plan built
    // from the older statistics.
    const CardinalityOverlay feedback_overlay = db_->feedback_store()->Snapshot();
    const CardinalityOverlay* base_overlay =
        feedback_overlay.empty() ? nullptr : &feedback_overlay;
    const std::string key =
        OptimizerOptionsFingerprint(opts) + "\n" + sql +
        "\nbatch=" + std::to_string(effective_batch) +
        "\nfeedback=" + std::to_string(db_->feedback_store()->version());
    const std::string backend_label = SanitizeReasonLabel(
        opts.join_order_backend.empty() ? "dp" : opts.join_order_backend);

    CachedPlanMeta meta;
    OpPtr instance;
    // Parallel queries never reuse pooled instances (they need fresh
    // replicas for shared-state wiring), so leave the pool untouched for
    // them.
    const bool want_instance = effective_dop == 1;
    const bool hit = plan_cache_.Lookup(key, epoch, &meta,
                                        want_instance ? &instance : nullptr);
    if (hit) {
      plan_cache_hits_->Increment();
      metrics_.counter(kCacheHitBackendPrefix + backend_label + "}")
          ->Increment();
    } else {
      plan_cache_misses_->Increment();
      metrics_.counter(kCacheMissBackendPrefix + backend_label + "}")
          ->Increment();
      MAGICDB_ASSIGN_OR_RETURN(BoundSelect fresh_bound, db_->BindSelect(sql));
      MAGICDB_ASSIGN_OR_RETURN(PlannedSelect planned,
                               db_->PlanBound(fresh_bound, opts, base_overlay));
      meta.bound = planned.bound;
      meta.schema = planned.schema;
      meta.explain = planned.explain;
      meta.est_cost = planned.est_cost;
      meta.est_rows = planned.est_rows;
      meta.filter_joins = planned.filter_joins;
      meta.optimizer_stats = planned.optimizer_stats;
      // Injected insert failure models a cache under memory pressure: the
      // query must fail cleanly at Open (ticket released by the caller)
      // rather than stream from a half-registered plan.
      MAGICDB_FAILPOINT("server.plan_cache.insert");
      plan_cache_.Insert(key, epoch, meta);
      if (want_instance) instance = std::move(planned.root);
    }

    const int64_t high_water = exec.stream_queue_rows > 0
                                   ? exec.stream_queue_rows
                                   : options_.stream_queue_rows;
    auto state = std::make_shared<CursorState>(this, high_water);
    // Per-query memory governor: one tracker shared by every worker
    // context and the result sink. 0 defers to the service default;
    // negative opts out entirely.
    const int64_t memory_limit = exec.memory_limit_bytes != 0
                                     ? exec.memory_limit_bytes
                                     : options_.query_memory_limit_bytes;
    if (memory_limit > 0) {
      state->memory_tracker = std::make_shared<MemoryTracker>(memory_limit);
      state->sink.set_memory_tracker(state->memory_tracker);
    }
    state->token = token;
    state->plan_epoch = epoch;
    state->cache_key = key;
    state->schema = meta.schema;
    state->explain = meta.explain;
    state->est_cost = meta.est_cost;
    state->est_rows = meta.est_rows;
    state->filter_joins = meta.filter_joins;
    state->optimizer_stats = meta.optimizer_stats;
    state->memory_claim = memory_limit > 0 ? memory_limit : 0;
    // Liveness plumbing: one shared heartbeat per query, inherited by every
    // worker context; the registry entry lets the watchdog sample it and
    // graceful drain cancel through it until CloseCursor unregisters.
    state->progress_heartbeat = std::make_shared<std::atomic<int64_t>>(0);
    watch_id = RegisterLiveQuery(state);
    state->watch_id = watch_id;

    const bool has_limit = meta.bound.limit >= 0;

    auto producer = std::make_shared<StreamProducer>();
    producer->cursor = state;
    producer->ctx.set_memory_budget_bytes(opts.memory_budget_bytes);
    producer->ctx.set_cancel_token(token);
    producer->ctx.set_memory_tracker(state->memory_tracker);
    producer->ctx.set_batch_size(effective_batch);
    producer->ctx.set_progress_heartbeat(state->progress_heartbeat);
    // Out-of-core degradation is offered only to governed queries that did
    // not opt out, and only when the service has a spill area. An
    // ungoverned query never breaches, so the manager would be inert.
    const bool spill_active = spill_manager_ != nullptr && exec.allow_spill &&
                              state->memory_tracker != nullptr;
    if (spill_active) {
      producer->ctx.set_spill_manager(spill_manager_);
    }

    // Adaptive re-optimization plumbing: one ledger per query, shared by
    // every execution context; the resolved threshold arms triggering only
    // on the paths that can restart cleanly (eager sequential Open, the
    // parallel gang) — lazily pumped streams record observations but never
    // trigger.
    const double reopt_threshold =
        ResolveReoptQErrorThreshold(exec.reoptimize_qerror_threshold);
    auto ledger = std::make_shared<CardinalityFeedback>();
    state->cardinality_feedback = ledger;
    producer->ctx.set_cardinality_feedback(ledger);
    producer->persist_feedback = exec.persist_feedback;
    // Folds the attempt's exact scan/view observations into `overlay` for
    // the next plan, suppressing each folded key (the corrected estimate
    // makes re-triggering on it pointless).
    auto fold_overlay = [&ledger](CardinalityOverlay* overlay) {
      for (const CardinalityObservation& obs : ledger->Snapshot()) {
        if (!obs.exact || !IsOverlayKey(obs.key)) continue;
        overlay->rows[obs.key] = obs.actual;
        ledger->SuppressKey(obs.key);
      }
    };

    if (effective_dop > 1) {
      // Mirror Database::Run on the shared pool: plan isomorphic replicas
      // from the cached bound plan (skipping parse+bind on hits), run the
      // gang to completion, and stream the deterministic gather merge out
      // of the staged runs. A kReoptimizeRequested unwind from the gang
      // restarts the whole attempt against the corrected overlay (bounded;
      // the final attempt runs with triggering disabled).
      CardinalityOverlay attempt_overlay = feedback_overlay;
      int replans_left =
          reopt_threshold > 0 ? std::max(0, exec.max_reoptimizations) : 0;
      StatusOr<StagedStream> staged_or = Status::Internal("unreachable");
      while (true) {
        const CardinalityOverlay* ov =
            attempt_overlay.empty() ? nullptr : &attempt_overlay;
        std::vector<OpPtr> replicas;
        MAGICDB_ASSIGN_OR_RETURN(PlannedSelect first,
                                 db_->PlanBound(meta.bound, opts, ov));
        // Keep the cursor's plan metadata attached to the plan actually
        // running (a re-planned attempt differs from the cached one).
        state->explain = first.explain;
        state->est_cost = first.est_cost;
        state->est_rows = first.est_rows;
        state->filter_joins = first.filter_joins;
        state->optimizer_stats = first.optimizer_stats;
        replicas.push_back(std::move(first.root));
        if (!has_limit &&
            ParallelExecutor::UnsafeReason(*replicas[0]).empty()) {
          for (int w = 1; w < effective_dop; ++w) {
            MAGICDB_ASSIGN_OR_RETURN(PlannedSelect replica,
                                     db_->PlanBound(meta.bound, opts, ov));
            replicas.push_back(std::move(replica.root));
          }
        }
        ParallelExecutor executor(has_limit ? 1 : effective_dop);
        ExecContext proto;
        proto.InheritConfig(producer->ctx);
        proto.set_shared_pool(pool_.get());
        proto.set_reoptimize_qerror_threshold(
            replans_left > 0 ? reopt_threshold : 0.0);
        staged_or = executor.RunStaged(std::move(replicas), proto);
        if (!staged_or.ok() && staged_or.status().IsReoptimizeRequested() &&
            replans_left > 0) {
          RecordReoptimization(staged_or.status().message());
          state->reoptimizations += 1;
          fold_overlay(&attempt_overlay);
          // Fresh governor: the aborted gang may have unwound with charges
          // still on the tracker.
          if (memory_limit > 0) {
            state->memory_tracker =
                std::make_shared<MemoryTracker>(memory_limit);
            state->sink.set_memory_tracker(state->memory_tracker);
            producer->ctx.set_memory_tracker(state->memory_tracker);
          }
          --replans_left;
          continue;
        }
        break;
      }
      if (!staged_or.ok() &&
          staged_or.status().code() == StatusCode::kResourceExhausted &&
          spill_active) {
        // The gang breached the limit in a spot the parallel operators
        // cannot spill from (e.g. a shared build): degrade to sequential
        // out-of-core execution instead of failing. Nothing has streamed
        // yet, and the failed gang may have unwound with charges still on
        // the tracker, so the retry gets a fresh governor.
        state->memory_tracker = std::make_shared<MemoryTracker>(memory_limit);
        state->sink.set_memory_tracker(state->memory_tracker);
        producer->ctx.set_memory_tracker(state->memory_tracker);
        MAGICDB_ASSIGN_OR_RETURN(
            PlannedSelect sequential,
            db_->PlanBound(meta.bound, opts, base_overlay));
        producer->tree = std::move(sequential.root);
        producer->check_epoch = true;
        state->used_dop = 1;
        state->parallel_fallback_reason =
            "memory pressure: degraded to sequential spill";
        RecordParallelFallback(state->parallel_fallback_reason);
        SubmitProducer(producer);
        return Cursor(state);
      }
      MAGICDB_RETURN_IF_ERROR(staged_or.status());
      StagedStream staged = std::move(*staged_or);
      producer->tree = std::move(staged.stream_root);
      if (staged.staged) {
        // Gang already ran; the gather drain performs no query work, so
        // the counters are final now and DDL can no longer stale the plan.
        state->used_dop = staged.used_dop;
        state->final_counters = staged.counters;
        if (staged.has_filter_join) {
          state->filter_join_measured.push_back(staged.filter_join_measured);
        }
        producer->counters_preset = true;
      } else {
        state->used_dop = 1;
        state->parallel_fallback_reason =
            has_limit ? "LIMIT clause" : std::move(staged.fallback_reason);
        producer->check_epoch = true;
      }
      if (state->used_dop < effective_dop) {
        RecordParallelFallback(state->parallel_fallback_reason);
      }
      SubmitProducer(producer);
      return Cursor(state);
    }

    // Sequential path: reuse a pooled instance when one was available,
    // otherwise instantiate from the cached bound plan.
    if (instance != nullptr) {
      if (hit) plan_instance_reuses_->Increment();
    } else {
      MAGICDB_ASSIGN_OR_RETURN(PlannedSelect planned,
                               db_->PlanBound(meta.bound, opts, base_overlay));
      instance = std::move(planned.root);
    }
    producer->tree = std::move(instance);
    producer->check_epoch = true;
    producer->check_in = true;
    state->used_dop = 1;
    if (reopt_threshold > 0) {
      // Re-optimization arms only an eager Open: every pipeline breaker
      // completes inside Open(), so a trigger always fires before the first
      // output row and the restart is invisible to the consumer. Opening
      // here (still under the DDL lock, like the parallel gang) keeps the
      // lazily pumped quanta trigger-free.
      int replans_left = std::max(0, exec.max_reoptimizations);
      CardinalityOverlay attempt_overlay = feedback_overlay;
      while (true) {
        producer->ctx.set_reoptimize_qerror_threshold(
            replans_left > 0 ? reopt_threshold : 0.0);
        Status open_status = producer->tree->Open(&producer->ctx);
        if (open_status.ok()) {
          producer->opened = true;
          // Breakers are done; later observations must never fail Next().
          producer->ctx.set_reoptimize_qerror_threshold(0.0);
          break;
        }
        if (!open_status.IsReoptimizeRequested() || replans_left <= 0) {
          // Surface execution failures through the stream, exactly as the
          // lazy Open does: the first Fetch reports them and Close runs the
          // normal terminal accounting (memory histogram included).
          FinishProducer(producer, std::move(open_status));
          return Cursor(state);
        }
        RecordReoptimization(open_status.message());
        state->reoptimizations += 1;
        // The replacement plan is attempt-specific: never check it back
        // into the plan cache.
        producer->check_in = false;
        fold_overlay(&attempt_overlay);
        // Fresh context per attempt so the aborted attempt's counters don't
        // leak into the final totals (Run() has the same contract).
        ExecContext fresh;
        fresh.InheritConfig(producer->ctx);
        producer->ctx = std::move(fresh);
        if (memory_limit > 0) {
          state->memory_tracker = std::make_shared<MemoryTracker>(memory_limit);
          state->sink.set_memory_tracker(state->memory_tracker);
          producer->ctx.set_memory_tracker(state->memory_tracker);
        }
        MAGICDB_ASSIGN_OR_RETURN(
            PlannedSelect replanned,
            db_->PlanBound(meta.bound, opts, &attempt_overlay));
        state->explain = replanned.explain;
        state->est_cost = replanned.est_cost;
        state->est_rows = replanned.est_rows;
        state->filter_joins = replanned.filter_joins;
        state->optimizer_stats = replanned.optimizer_stats;
        producer->tree = std::move(replanned.root);
        --replans_left;
      }
    }
    SubmitProducer(producer);
    return Cursor(state);
  }();
  // A failed Open never hands out a cursor, so nothing would ever
  // unregister it — drop the registry entry here.
  if (!result.ok() && watch_id != 0) UnregisterLiveQuery(watch_id);
  // The gang (if any) has finished by now either way; only the admission
  // ticket stays held for the cursor's lifetime.
  ReleaseGangSlots(gang_slots);
  return result;
}

StatusOr<std::vector<Tuple>> QueryService::FetchFromCursor(
    CursorState* cursor, int64_t max_rows) {
  if (cursor->closed) {
    return Status::InvalidArgument("Fetch on a closed cursor");
  }
  if (max_rows <= 0) {
    return Status::InvalidArgument("Fetch max_rows must be positive");
  }
  if (cursor->saw_eof) {
    return std::vector<Tuple>{};  // idempotent end-of-stream marker
  }
  MAGICDB_FAILPOINT("server.cursor.fetch");
  const Clock::time_point start = Clock::now();
  StatusOr<std::vector<Tuple>> batch =
      cursor->sink.Fetch(max_rows, cursor->token.get());
  cursor_batch_wait_us_->Observe(ElapsedUs(start));
  if (!batch.ok()) return batch;
  rows_streamed_->Add(static_cast<int64_t>(batch->size()));
  if (batch->empty()) cursor->saw_eof = true;
  return batch;
}

Status QueryService::CloseCursor(CursorState* cursor) {
  if (cursor->closed) return cursor->terminal_status;
  cursor->closed = true;
  if (cursor->watch_id != 0) UnregisterLiveQuery(cursor->watch_id);

  // Read the token before (possibly) cancelling it ourselves, so a
  // deadline that fired mid-stream is classified as such.
  const Status token_state = cursor->token->Check();
  if (!cursor->saw_eof) {
    // Closed before end of stream: unwind remaining production. A fully
    // consumed cursor leaves the token alone — it may be externally owned
    // and shared with a follow-up query.
    cursor->token->Cancel();
  }
  cursor->sink.Drain();

  // Terminal classification, exactly once per cursor.
  const Status final = cursor->sink.final_status();
  Status terminal;
  if (cursor->saw_eof && final.ok()) {
    queries_completed_->Increment();
    terminal = Status::OK();
  } else if (!final.ok()) {
    if (final.code() == StatusCode::kCancelled) {
      queries_cancelled_->Increment();
    } else if (final.code() == StatusCode::kDeadlineExceeded) {
      deadlines_exceeded_->Increment();
    } else if (final.code() == StatusCode::kResourceExhausted) {
      queries_resource_exhausted_->Increment();
    }
    queries_failed_->Increment();
    terminal = final;
  } else {
    // Producer ended cleanly but the consumer walked away early.
    if (token_state.code() == StatusCode::kDeadlineExceeded) {
      deadlines_exceeded_->Increment();
    } else {
      queries_cancelled_->Increment();
    }
    queries_failed_->Increment();
    terminal = token_state.ok()
                   ? Status::Cancelled("cursor closed before end of stream")
                   : token_state;
  }
  cursor->terminal_status = terminal;
  if (cursor->memory_tracker != nullptr) {
    query_memory_bytes_->Observe(cursor->memory_tracker->peak_bytes());
  }
  if (spill_manager_ != nullptr &&
      cursor->final_counters.spill_bytes_written > 0) {
    spill_manager_->NoteQuerySpilled();
  }
  const int64_t latency_us = ElapsedUs(cursor->start_time);
  query_latency_us_->Observe(latency_us);
  // Feed the shed estimator. Lossy read-modify-write is fine: any recent
  // latency is a usable signal, and the estimate only gates shedding.
  const int64_t ewma = ewma_query_latency_us_.load(std::memory_order_relaxed);
  ewma_query_latency_us_.store(
      ewma == 0 ? latency_us : (ewma * 4 + latency_us) / 5,
      std::memory_order_relaxed);
  open_cursors_->Add(-1);
  ReleaseTicket(cursor->memory_claim);
  return terminal;
}

StatusOr<QueryResult> QueryService::Query(Session* session,
                                          const std::string& sql,
                                          const ExecOptions& exec) {
  StatusOr<QueryResult> result = QueryViaCursor(session, sql, exec);
  // Two transparent retry families, both with capped exponential backoff
  // plus jitter from the session's deterministic PRNG (racing sessions
  // de-synchronize; tests replay exact timings):
  //
  //   - DDL staleness (kFailedPrecondition): concurrent DDL between
  //     production quanta stales a sequential stream. An explicit cursor
  //     hands that error to its consumer, but the fetch-all wrapper has
  //     delivered nothing yet, so it keeps Query's pre-streaming contract —
  //     unrelated DDL never fails a query — by replanning at the fresh
  //     epoch. Each retry requires another DDL to land inside the retried
  //     execution, so a small bound suffices.
  //   - Load shedding (kUnavailable with a `retry_after_us=` hint): the
  //     admission controller rejected the submission under overload. The
  //     wrapper honors the server's hint as a floor under its own backoff,
  //     so retry pressure decays as the queue drains. A kUnavailable
  //     without the hint (service draining) is not retried.
  Backoff ddl_backoff(50, 5000, session->retry_rng());
  Backoff shed_backoff(200, 20000, session->retry_rng());
  int ddl_retries = 0;
  int shed_retries = 0;
  constexpr int kMaxDdlRetries = 10;
  constexpr int kMaxShedRetries = 16;
  constexpr int64_t kMaxShedSleepUs = 50000;
  while (!result.ok()) {
    int64_t sleep_us = 0;
    if (result.status().code() == StatusCode::kFailedPrecondition &&
        ddl_retries < kMaxDdlRetries) {
      ++ddl_retries;
      query_ddl_retries_->Increment();
      sleep_us = ddl_backoff.NextDelayUs();
    } else if (result.status().code() == StatusCode::kUnavailable &&
               shed_retries < kMaxShedRetries) {
      const int64_t hint_us = ParseRetryAfterUs(result.status().message());
      if (hint_us < 0) break;  // no hint: permanent (draining), surface it
      ++shed_retries;
      query_shed_retries_->Increment();
      sleep_us = std::min(std::max(hint_us, shed_backoff.NextDelayUs()),
                          kMaxShedSleepUs);
    } else {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    result = QueryViaCursor(session, sql, exec);
  }
  return result;
}

StatusOr<QueryResult> QueryService::QueryViaCursor(Session* session,
                                                   const std::string& sql,
                                                   const ExecOptions& exec) {
  MAGICDB_ASSIGN_OR_RETURN(Cursor cursor, Open(session, sql, exec));

  QueryResult result;
  result.schema = cursor.schema();
  result.explain = cursor.explain();
  result.est_cost = cursor.est_cost();
  result.est_rows = cursor.est_rows();
  result.filter_joins = cursor.filter_joins();
  result.optimizer_stats = cursor.optimizer_stats();

  // Fetch-all loop: one high-water mark's worth per call keeps the
  // producer's park/resume cycle amortized.
  const int64_t batch_rows =
      exec.stream_queue_rows > 0 ? exec.stream_queue_rows
                                 : options_.stream_queue_rows;
  while (true) {
    StatusOr<std::vector<Tuple>> batch = cursor.Fetch(batch_rows);
    if (!batch.ok()) {
      cursor.Close();  // classifies the failure; Close status is the same
      return batch.status();
    }
    if (batch->empty()) break;
    if (result.rows.empty()) {
      result.rows = std::move(*batch);
    } else {
      result.rows.insert(result.rows.end(),
                         std::make_move_iterator(batch->begin()),
                         std::make_move_iterator(batch->end()));
    }
  }

  // End of stream: the producer has published its terminal state.
  result.counters = cursor.counters();
  result.used_dop = cursor.used_dop();
  result.parallel_fallback_reason = cursor.parallel_fallback_reason();
  result.filter_join_measured = cursor.filter_join_measured();
  result.reoptimizations = cursor.reoptimizations();
  result.feedback = cursor.feedback();
  MAGICDB_RETURN_IF_ERROR(cursor.Close());
  return result;
}

void QueryService::RecordParallelFallback(const std::string& reason) {
  parallel_fallbacks_->Increment();
  metrics_
      .counter(kFallbackMetricPrefix + SanitizeReasonLabel(reason) + "}")
      ->Increment();
}

void QueryService::RecordReoptimization(const std::string& reason) {
  reoptimizations_->Increment();
  metrics_.counter(kReoptMetricPrefix + SanitizeReasonLabel(reason) + "}")
      ->Increment();
}

void QueryService::SyncSpillMetrics() const {
  if (spill_manager_ == nullptr) return;
  // The spill atomics live on the SpillManager (operators bump them off the
  // metrics hot path); mirror them into the registry on read, like the
  // pool's steal count.
  spill_bytes_written_->Set(spill_manager_->bytes_written());
  spill_bytes_read_->Set(spill_manager_->bytes_read());
  spill_files_created_->Set(spill_manager_->files_created());
  spill_partitions_opened_->Set(spill_manager_->partitions_opened());
  spill_recursion_depth_max_->Set(spill_manager_->max_recursion_depth_seen());
  spilled_queries_->Set(spill_manager_->spilled_queries());
  spill_disk_budget_bytes_->Set(spill_manager_->disk_budget_bytes());
  spill_disk_used_bytes_->Set(spill_manager_->disk_used_bytes());
  spill_disk_rejections_->Set(spill_manager_->disk_budget_rejections());
}

ServiceStats QueryService::StatsSnapshot() const {
  morsels_stolen_->Set(pool_->steal_count());
  SyncSpillMetrics();
  ServiceStats s;
  s.pool_threads = pool_->size();
  s.queries_submitted = queries_submitted_->Value();
  s.queries_admitted = queries_admitted_->Value();
  s.queries_completed = queries_completed_->Value();
  s.queries_failed = queries_failed_->Value();
  s.queries_cancelled = queries_cancelled_->Value();
  s.deadlines_exceeded = deadlines_exceeded_->Value();
  s.queries_resource_exhausted = queries_resource_exhausted_->Value();
  s.query_ddl_retries = query_ddl_retries_->Value();
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    s.active_queries = active_queries_;
    s.used_gang_slots = used_gang_slots_;
    s.queued_queries = static_cast<int>(QueuedLocked());
    s.memory_ceiling_claimed_bytes = memory_ceiling_claimed_;
    s.draining = draining_;
  }
  memory_ceiling_claimed_bytes_->Set(s.memory_ceiling_claimed_bytes);
  s.queries_shed = queries_shed_->Value();
  s.query_shed_retries = query_shed_retries_->Value();
  s.watchdog_cancels = watchdog_cancels_->Value();
  s.spill_disk_budget_bytes = spill_disk_budget_bytes_->Value();
  s.spill_disk_used_bytes = spill_disk_used_bytes_->Value();
  s.spill_disk_rejections = spill_disk_rejections_->Value();
  s.plan_cache_hits = plan_cache_hits_->Value();
  s.plan_cache_misses = plan_cache_misses_->Value();
  s.plan_instance_reuses = plan_instance_reuses_->Value();
  s.sched_quanta = sched_quanta_->Value();
  s.morsels_stolen = morsels_stolen_->Value();
  s.ddl_epoch = db_->catalog()->ddl_epoch();
  s.cursors_opened = cursors_opened_->Value();
  s.open_cursors = open_cursors_->Value();
  s.rows_streamed = rows_streamed_->Value();
  s.cursor_producer_parks = cursor_parks_->Value();
  s.cursors_stale = cursors_stale_->Value();
  s.parallel_fallbacks = parallel_fallbacks_->Value();
  s.reoptimizations = reoptimizations_->Value();
  s.spill_bytes_written = spill_bytes_written_->Value();
  s.spill_bytes_read = spill_bytes_read_->Value();
  s.spill_files_created = spill_files_created_->Value();
  s.spill_partitions_opened = spill_partitions_opened_->Value();
  s.spill_recursion_depth_max = spill_recursion_depth_max_->Value();
  s.spilled_queries = spilled_queries_->Value();
  // Labeled-counter families, recovered by prefix from the flat registry.
  const std::pair<const char*, std::map<std::string, int64_t>*> families[] = {
      {kFallbackMetricPrefix, &s.parallel_fallback_reasons},
      {kReoptMetricPrefix, &s.reoptimization_reasons},
      {kCacheHitBackendPrefix, &s.plan_cache_hits_by_backend},
      {kCacheMissBackendPrefix, &s.plan_cache_misses_by_backend},
      {kShedReasonPrefix, &s.shed_reasons},
      {kWatchdogReasonPrefix, &s.watchdog_cancel_reasons},
      {kAdmittedPriorityPrefix, &s.admitted_by_priority},
  };
  for (const auto& [name, value] : metrics_.CounterValues()) {
    for (const auto& [family_prefix, out] : families) {
      const std::string prefix = family_prefix;
      if (name.size() > prefix.size() + 1 &&
          name.compare(0, prefix.size(), prefix) == 0) {
        const std::string label =
            name.substr(prefix.size(), name.size() - prefix.size() - 1);
        (*out)[label] = value;
      }
    }
  }
  s.admission_wait_us_p50 = admission_wait_us_->Quantile(0.50);
  s.admission_wait_us_p95 = admission_wait_us_->Quantile(0.95);
  for (int p = 0; p < kNumSessionPriorities; ++p) {
    if (admitted_by_priority_[p]->Value() == 0) continue;
    const std::string label =
        SessionPriorityName(static_cast<SessionPriority>(p));
    s.admission_wait_us_p50_by_priority[label] =
        admission_wait_us_by_priority_[p]->Quantile(0.50);
    s.admission_wait_us_p95_by_priority[label] =
        admission_wait_us_by_priority_[p]->Quantile(0.95);
  }
  s.query_latency_us_p50 = query_latency_us_->Quantile(0.50);
  s.query_latency_us_p95 = query_latency_us_->Quantile(0.95);
  s.query_latency_us_p99 = query_latency_us_->Quantile(0.99);
  s.cursor_batch_wait_us_p50 = cursor_batch_wait_us_->Quantile(0.50);
  s.cursor_batch_wait_us_p95 = cursor_batch_wait_us_->Quantile(0.95);
  return s;
}

std::string QueryService::MetricsText() const {
  morsels_stolen_->Set(pool_->steal_count());
  SyncSpillMetrics();
  std::string text = metrics_.TextDump();
#ifdef MAGICDB_FAILPOINTS
  // Failpoint builds export per-site fire counts so chaos runs can assert
  // that the intended sites actually fired.
  text += FailpointRegistry::Instance().MetricsText();
#endif
  return text;
}

}  // namespace magicdb
