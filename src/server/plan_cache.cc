#include "src/server/plan_cache.h"

namespace magicdb {

bool PlanCache::Lookup(const std::string& key, int64_t epoch,
                       CachedPlanMeta* meta, OpPtr* instance) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  Entry& entry = it->second;
  if (entry.epoch != epoch) {
    // Stale: the catalog changed under this plan. Drop it so the caller
    // re-plans against the current catalog.
    lru_.erase(entry.lru_pos);
    entries_.erase(it);
    return false;
  }
  *meta = entry.meta;
  if (instance != nullptr) {
    if (!entry.idle_instances.empty()) {
      *instance = std::move(entry.idle_instances.back());
      entry.idle_instances.pop_back();
    } else {
      instance->reset();
    }
  }
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
  return true;
}

void PlanCache::Insert(const std::string& key, int64_t epoch,
                       CachedPlanMeta meta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Concurrent planners can race to insert the same key; the entries are
    // equivalent (deterministic optimizer), so keep the incumbent but
    // refresh it if its epoch is older.
    Entry& entry = it->second;
    if (entry.epoch != epoch) {
      entry.epoch = epoch;
      entry.meta = std::move(meta);
      entry.idle_instances.clear();
    }
    lru_.splice(lru_.begin(), lru_, entry.lru_pos);
    return;
  }
  lru_.push_front(key);
  Entry entry;
  entry.epoch = epoch;
  entry.meta = std::move(meta);
  entry.lru_pos = lru_.begin();
  entries_.emplace(key, std::move(entry));
  EvictIfNeeded();
}

void PlanCache::CheckIn(const std::string& key, int64_t epoch,
                        OpPtr instance) {
  if (instance == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  if (entry.epoch != epoch) return;
  if (entry.idle_instances.size() >= max_idle_instances_) return;
  entry.idle_instances.push_back(std::move(instance));
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

int64_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void PlanCache::EvictIfNeeded() {
  while (entries_.size() > max_entries_) {
    const std::string& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    evictions_ += 1;
  }
}

}  // namespace magicdb
