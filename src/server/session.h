#ifndef MAGICDB_SERVER_SESSION_H_
#define MAGICDB_SERVER_SESSION_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/cancellation.h"
#include "src/common/random.h"
#include "src/common/statusor.h"
#include "src/db/database.h"
#include "src/exec/exec_options.h"
#include "src/optimizer/optimizer_options.h"
#include "src/server/cursor.h"

namespace magicdb {

class QueryService;

/// Admission priority class of a session. The weighted-fair admission
/// controller shares capacity between classes by configurable weights, and
/// load shedding under overload never rejects kHigh queries — they queue.
enum class SessionPriority {
  kHigh = 0,
  kNormal = 1,
  kBackground = 2,
};

inline constexpr int kNumSessionPriorities = 3;

/// Stable metric/label name of a priority class ("high" / "normal" /
/// "background").
const char* SessionPriorityName(SessionPriority priority);

/// Construction-time knobs of one session.
struct SessionOptions {
  SessionPriority priority = SessionPriority::kNormal;
};

/// One client's connection to a QueryService: per-session optimizer
/// options, named prepared statements, and the entry points that route
/// through the service's admission controller, shared pool, and plan
/// cache. Results are byte-identical to calling Database::Query() with the
/// same options.
///
/// A Session must not outlive its QueryService. One session is meant to be
/// driven by one client thread at a time; distinct sessions are safe to
/// drive concurrently.
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int64_t id() const { return id_; }

  /// Admission priority class this session's queries are submitted under.
  SessionPriority priority() const { return session_options_.priority; }

  /// Session-private planning knobs. Changing them re-keys this session's
  /// plan-cache lookups (the options fingerprint is part of the key), so a
  /// cached plan never crosses an options change.
  const OptimizerOptions& options() const { return options_; }
  OptimizerOptions* mutable_options() { return &options_; }

  /// Runs a SELECT through the service (admission -> plan cache ->
  /// shared-pool execution) and materializes the full result. Implemented
  /// as a fetch-all loop over Open() — large results are better consumed
  /// through a cursor directly.
  StatusOr<QueryResult> Query(const std::string& sql,
                              const ExecOptions& exec = {});

  /// Opens a streaming cursor for a SELECT: rows arrive incrementally
  /// through Cursor::Fetch from a bounded, backpressured queue instead of
  /// one materialized vector. The query stays admitted until the cursor is
  /// closed (or destroyed). Concatenating all fetched batches yields
  /// exactly what Query() returns for the same statement and options.
  StatusOr<Cursor> Open(const std::string& sql, const ExecOptions& exec = {});

  /// Cursor variant of ExecutePrepared.
  StatusOr<Cursor> OpenPrepared(const std::string& name,
                                const ExecOptions& exec = {});

  /// Registers `sql` under `name`, parse/bind-validating it eagerly so
  /// errors surface at Prepare time. Re-preparing a name replaces it.
  Status Prepare(const std::string& name, const std::string& sql);

  /// Executes a statement registered with Prepare. Repeated executions hit
  /// the plan cache.
  StatusOr<QueryResult> ExecutePrepared(const std::string& name,
                                        const ExecOptions& exec = {});

  /// Plans a SELECT under this session's options; returns the EXPLAIN text.
  StatusOr<std::string> Explain(const std::string& sql);

 private:
  friend class QueryService;
  Session(QueryService* service, int64_t id, OptimizerOptions options,
          SessionOptions session_options);

  /// Jitter source for this session's retry backoff (DDL staleness, shed
  /// retry). Seeded from the session id, so retry timing is deterministic
  /// under test; one session is driven by one client thread, which is the
  /// only caller.
  Random* retry_rng() { return &retry_rng_; }

  QueryService* service_;
  const int64_t id_;
  OptimizerOptions options_;
  const SessionOptions session_options_;
  Random retry_rng_;

  std::mutex mu_;  // guards prepared_
  std::map<std::string, std::string> prepared_;
};

}  // namespace magicdb

#endif  // MAGICDB_SERVER_SESSION_H_
