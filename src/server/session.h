#ifndef MAGICDB_SERVER_SESSION_H_
#define MAGICDB_SERVER_SESSION_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/cancellation.h"
#include "src/common/statusor.h"
#include "src/db/database.h"
#include "src/optimizer/optimizer_options.h"
#include "src/server/cursor.h"

namespace magicdb {

class QueryService;

/// Per-query execution controls a session passes to the service.
struct ExecOptions {
  /// Requested degree of parallelism; clamped to the service pool size.
  /// 1 (default) runs on the fair cooperative scheduler; > 1 runs the
  /// morsel-parallel executor as a gang on the shared pool when the plan
  /// shape allows (otherwise it falls back to the sequential path with
  /// QueryResult::parallel_fallback_reason set).
  int dop = 1;

  /// Relative deadline for the whole query, admission wait included.
  /// Zero = no deadline. A query that exceeds it unwinds cooperatively
  /// with StatusCode::kDeadlineExceeded.
  std::chrono::microseconds timeout{0};

  /// Optional externally owned token; lets the submitter cancel the query
  /// from another thread. When null and a timeout is set, the service
  /// creates an internal token.
  CancelTokenPtr cancel_token;

  /// High-water mark (rows) of this query's streaming result queue; the
  /// producer parks once this many rows are buffered unfetched. 0 = the
  /// service default (QueryServiceOptions::stream_queue_rows).
  int64_t stream_queue_rows = 0;

  /// Memory limit (bytes) for this query's retained execution state: hash
  /// and filter-join build tables, spooled production sets, aggregate
  /// groups, staged parallel rows, and the unfetched result queue. A query
  /// that would exceed it fails with StatusCode::kResourceExhausted instead
  /// of growing unbounded. 0 = the service default
  /// (QueryServiceOptions::query_memory_limit_bytes); negative = explicitly
  /// ungoverned regardless of the service default.
  int64_t memory_limit_bytes = 0;

  /// Whether this query may degrade to out-of-core execution (Grace hash
  /// join, hybrid hash aggregation, external merge sort) when it breaches
  /// its memory limit. Effective only when the service has a spill area
  /// (QueryServiceOptions::spill_dir); false keeps the hard
  /// kResourceExhausted failure even then.
  bool allow_spill = true;

  /// Rows per batch for the vectorized execution path (Operator::NextBatch):
  /// operators exchange column-oriented batches instead of single tuples,
  /// with memory charges and cancellation checks coalesced per batch.
  /// Results, result order, and cost counters are byte-identical to the
  /// tuple-at-a-time path at any dop. 0 = classic tuple-at-a-time
  /// execution; negative (the default) = the service default
  /// (QueryServiceOptions::default_batch_size, normally 1024). The
  /// effective value participates in the plan-cache key.
  int64_t batch_size = -1;
};

/// One client's connection to a QueryService: per-session optimizer
/// options, named prepared statements, and the entry points that route
/// through the service's admission controller, shared pool, and plan
/// cache. Results are byte-identical to calling Database::Query() with the
/// same options.
///
/// A Session must not outlive its QueryService. One session is meant to be
/// driven by one client thread at a time; distinct sessions are safe to
/// drive concurrently.
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int64_t id() const { return id_; }

  /// Session-private planning knobs. Changing them re-keys this session's
  /// plan-cache lookups (the options fingerprint is part of the key), so a
  /// cached plan never crosses an options change.
  const OptimizerOptions& options() const { return options_; }
  OptimizerOptions* mutable_options() { return &options_; }

  /// Runs a SELECT through the service (admission -> plan cache ->
  /// shared-pool execution) and materializes the full result. Implemented
  /// as a fetch-all loop over Open() — large results are better consumed
  /// through a cursor directly.
  StatusOr<QueryResult> Query(const std::string& sql,
                              const ExecOptions& exec = {});

  /// Opens a streaming cursor for a SELECT: rows arrive incrementally
  /// through Cursor::Fetch from a bounded, backpressured queue instead of
  /// one materialized vector. The query stays admitted until the cursor is
  /// closed (or destroyed). Concatenating all fetched batches yields
  /// exactly what Query() returns for the same statement and options.
  StatusOr<Cursor> Open(const std::string& sql, const ExecOptions& exec = {});

  /// Cursor variant of ExecutePrepared.
  StatusOr<Cursor> OpenPrepared(const std::string& name,
                                const ExecOptions& exec = {});

  /// Registers `sql` under `name`, parse/bind-validating it eagerly so
  /// errors surface at Prepare time. Re-preparing a name replaces it.
  Status Prepare(const std::string& name, const std::string& sql);

  /// Executes a statement registered with Prepare. Repeated executions hit
  /// the plan cache.
  StatusOr<QueryResult> ExecutePrepared(const std::string& name,
                                        const ExecOptions& exec = {});

  /// Plans a SELECT under this session's options; returns the EXPLAIN text.
  StatusOr<std::string> Explain(const std::string& sql);

 private:
  friend class QueryService;
  Session(QueryService* service, int64_t id, OptimizerOptions options);

  QueryService* service_;
  const int64_t id_;
  OptimizerOptions options_;

  std::mutex mu_;  // guards prepared_
  std::map<std::string, std::string> prepared_;
};

}  // namespace magicdb

#endif  // MAGICDB_SERVER_SESSION_H_
