#ifndef MAGICDB_SERVER_CURSOR_H_
#define MAGICDB_SERVER_CURSOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/statusor.h"
#include "src/db/database.h"
#include "src/exec/result_sink.h"

namespace magicdb {

class QueryService;

/// Shared state of one open cursor. Internal to the server layer: the
/// cursor handle, the query's producer tasks on the shared pool, and the
/// service all reference it via shared_ptr, so it outlives whichever side
/// finishes last. Clients use the Cursor wrapper below.
struct CursorState {
  CursorState(QueryService* service, int64_t high_water_rows)
      : service(service), sink(high_water_rows) {}

  QueryService* service;
  ResultSink sink;
  /// Per-query memory governor; null when the query runs ungoverned. Close
  /// reads its peak for the query_memory_bytes histogram.
  std::shared_ptr<MemoryTracker> memory_tracker;
  /// Never null: Close() cancels it to unwind any remaining production.
  CancelTokenPtr token;
  /// Catalog epoch the plan was built at; production quanta re-check it so
  /// a cursor never fetches from a plan whose catalog objects changed.
  int64_t plan_epoch = 0;
  /// Plan-cache key for checking the instance back in at end of stream
  /// (empty when this execution's tree is not poolable).
  std::string cache_key;
  std::chrono::steady_clock::time_point start_time{};
  /// Bytes this query claims against the service-wide memory ceiling (its
  /// effective memory limit; 0 when ungoverned or no ceiling configured).
  /// Released together with the admission ticket at close.
  int64_t memory_claim = 0;
  /// Live-query registry id (stuck-query watchdog, graceful drain);
  /// 0 = never registered.
  uint64_t watch_id = 0;
  /// Liveness heartbeat shared with every execution context of the query;
  /// the watchdog cancels the token when it stops advancing.
  std::shared_ptr<std::atomic<int64_t>> progress_heartbeat;

  // Plan metadata, immutable once the cursor is handed out.
  Schema schema;
  std::string explain;
  double est_cost = 0.0;
  double est_rows = 0.0;
  std::vector<FilterJoinCostBreakdown> filter_joins;
  OptimizerStats optimizer_stats;
  int used_dop = 1;
  std::string parallel_fallback_reason;
  /// Times runtime cardinality feedback re-planned this query before its
  /// final attempt ran to completion (0 = the first plan survived).
  int reoptimizations = 0;
  /// Per-query runtime cardinality ledger (never null once opened); shared
  /// with every execution context of the query.
  std::shared_ptr<CardinalityFeedback> cardinality_feedback;

  // Terminal execution state: written by the producer strictly before
  // sink.Finish(), read by the consumer strictly after the sink reports
  // finished — the sink's mutex orders the handoff.
  CostCounters final_counters;
  std::vector<FilterJoinMeasured> filter_join_measured;

  // Consumer-side bookkeeping, touched only by the one client thread
  // driving the cursor (and by Close, which that thread calls).
  bool saw_eof = false;
  bool closed = false;
  Status terminal_status;
};

/// Streaming handle to one query's result: the bounded-memory replacement
/// for QueryResult's materialized row vector. Obtained from
/// Session::Open(); rows arrive through repeated Fetch(n) calls while the
/// query produces into a bounded, backpressured queue behind the scenes —
/// peak buffered rows never exceed the queue's high-water mark plus one
/// scheduler quantum, regardless of result cardinality.
///
/// Concatenating every fetched batch yields exactly the rows (same order,
/// same bytes) Session::Query() returns for the same statement and options
/// — Query() is in fact a fetch-all wrapper over this cursor.
///
/// Lifecycle: the query stays admitted (holds its admission ticket) while
/// the cursor is open; Close() — or the destructor — cancels any remaining
/// production, drains the queue, and releases the ticket, so an abandoned
/// or slow consumer cannot pin pool resources. The deadline/cancel token
/// is enforced at every Fetch. One thread drives a cursor; a cursor must
/// not outlive its session's QueryService.
class Cursor {
 public:
  /// An empty (already-closed) cursor; Fetch on it fails.
  Cursor() = default;
  ~Cursor();

  Cursor(Cursor&& other) noexcept;
  Cursor& operator=(Cursor&& other) noexcept;
  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;

  bool valid() const { return state_ != nullptr; }

  const Schema& schema() const { return state_->schema; }
  const std::string& explain() const { return state_->explain; }
  double est_cost() const { return state_->est_cost; }
  double est_rows() const { return state_->est_rows; }
  int used_dop() const { return state_->used_dop; }
  const std::string& parallel_fallback_reason() const {
    return state_->parallel_fallback_reason;
  }
  const std::vector<FilterJoinCostBreakdown>& filter_joins() const {
    return state_->filter_joins;
  }
  const OptimizerStats& optimizer_stats() const {
    return state_->optimizer_stats;
  }

  /// How many times cardinality feedback re-planned this query at Open.
  int reoptimizations() const { return state_->reoptimizations; }

  /// Breaker cardinalities observed while executing (first observation per
  /// key wins; complete once the stream ended).
  std::vector<CardinalityObservation> feedback() const {
    return state_->cardinality_feedback != nullptr
               ? state_->cardinality_feedback->Snapshot()
               : std::vector<CardinalityObservation>{};
  }

  /// Pulls the next batch: up to `max_rows` rows (at least one unless the
  /// stream ended), blocking until rows are available. An empty batch with
  /// OK status is the end-of-stream marker. Errors (deadline, cancellation,
  /// execution failure, stale plan after DDL) surface here; buffered rows
  /// are delivered before a stream error, but the cursor's own
  /// deadline/cancel token is checked first at every call.
  StatusOr<std::vector<Tuple>> Fetch(int64_t max_rows);

  /// True once Fetch returned the end-of-stream marker or an error.
  bool done() const;

  /// Execution totals, meaningful once the stream ended cleanly: exactly
  /// the counters (and measured Filter Join phases) Query() would report.
  const CostCounters& counters() const { return state_->final_counters; }
  const std::vector<FilterJoinMeasured>& filter_join_measured() const {
    return state_->filter_join_measured;
  }

  /// Most rows the result queue ever held, and how often the producer was
  /// suspended on a full queue — the observable backpressure facts the
  /// bounded-memory guarantee is stated against.
  int64_t peak_buffered_rows() const;
  int64_t producer_parks() const;

  /// Peak bytes the per-query memory governor ever had charged (0 when the
  /// query ran ungoverned). The governor rejects any charge that would
  /// exceed the limit, so this never exceeds it — spilling included.
  int64_t memory_peak_bytes() const {
    return state_->memory_tracker != nullptr
               ? state_->memory_tracker->peak_bytes()
               : 0;
  }

  /// Cancels remaining production, drains the queue, releases the query's
  /// admission ticket. Idempotent; later calls return the same terminal
  /// status (OK only when the stream was fully consumed to end-of-stream
  /// before closing).
  Status Close();

 private:
  friend class QueryService;
  explicit Cursor(std::shared_ptr<CursorState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<CursorState> state_;
};

}  // namespace magicdb

#endif  // MAGICDB_SERVER_CURSOR_H_
