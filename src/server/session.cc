#include "src/server/session.h"

#include "src/server/query_service.h"

namespace magicdb {

const char* SessionPriorityName(SessionPriority priority) {
  switch (priority) {
    case SessionPriority::kHigh:
      return "high";
    case SessionPriority::kNormal:
      return "normal";
    case SessionPriority::kBackground:
      return "background";
  }
  return "unknown";
}

Session::Session(QueryService* service, int64_t id, OptimizerOptions options,
                 SessionOptions session_options)
    : service_(service),
      id_(id),
      options_(std::move(options)),
      session_options_(session_options),
      // Deterministic per-session jitter: the golden-ratio constant keeps
      // low ids from collapsing onto nearby PRNG streams.
      retry_rng_(0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(id)) {}

Session::~Session() = default;

StatusOr<QueryResult> Session::Query(const std::string& sql,
                                     const ExecOptions& exec) {
  return service_->Query(this, sql, exec);
}

StatusOr<Cursor> Session::Open(const std::string& sql,
                               const ExecOptions& exec) {
  return service_->Open(this, sql, exec);
}

StatusOr<Cursor> Session::OpenPrepared(const std::string& name,
                                       const ExecOptions& exec) {
  std::string sql;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = prepared_.find(name);
    if (it == prepared_.end()) {
      return Status::InvalidArgument("no prepared statement named: " + name);
    }
    sql = it->second;
  }
  return service_->Open(this, sql, exec);
}

Status Session::Prepare(const std::string& name, const std::string& sql) {
  // Validate eagerly so a typo fails at Prepare time, not on first execute.
  MAGICDB_RETURN_IF_ERROR(service_->ValidateSelect(sql));
  std::lock_guard<std::mutex> lock(mu_);
  prepared_[name] = sql;
  return Status::OK();
}

StatusOr<QueryResult> Session::ExecutePrepared(const std::string& name,
                                               const ExecOptions& exec) {
  std::string sql;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = prepared_.find(name);
    if (it == prepared_.end()) {
      return Status::InvalidArgument("no prepared statement named: " + name);
    }
    sql = it->second;
  }
  return service_->Query(this, sql, exec);
}

StatusOr<std::string> Session::Explain(const std::string& sql) {
  return service_->Explain(sql, options_);
}

}  // namespace magicdb
