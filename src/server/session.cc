#include "src/server/session.h"

#include "src/server/query_service.h"

namespace magicdb {

Session::Session(QueryService* service, int64_t id, OptimizerOptions options)
    : service_(service), id_(id), options_(std::move(options)) {}

Session::~Session() = default;

StatusOr<QueryResult> Session::Query(const std::string& sql,
                                     const ExecOptions& exec) {
  return service_->Query(this, sql, exec);
}

StatusOr<Cursor> Session::Open(const std::string& sql,
                               const ExecOptions& exec) {
  return service_->Open(this, sql, exec);
}

StatusOr<Cursor> Session::OpenPrepared(const std::string& name,
                                       const ExecOptions& exec) {
  std::string sql;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = prepared_.find(name);
    if (it == prepared_.end()) {
      return Status::InvalidArgument("no prepared statement named: " + name);
    }
    sql = it->second;
  }
  return service_->Open(this, sql, exec);
}

Status Session::Prepare(const std::string& name, const std::string& sql) {
  // Validate eagerly so a typo fails at Prepare time, not on first execute.
  MAGICDB_RETURN_IF_ERROR(service_->ValidateSelect(sql));
  std::lock_guard<std::mutex> lock(mu_);
  prepared_[name] = sql;
  return Status::OK();
}

StatusOr<QueryResult> Session::ExecutePrepared(const std::string& name,
                                               const ExecOptions& exec) {
  std::string sql;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = prepared_.find(name);
    if (it == prepared_.end()) {
      return Status::InvalidArgument("no prepared statement named: " + name);
    }
    sql = it->second;
  }
  return service_->Query(this, sql, exec);
}

StatusOr<std::string> Session::Explain(const std::string& sql) {
  return service_->Explain(sql, options_);
}

}  // namespace magicdb
