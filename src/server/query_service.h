#ifndef MAGICDB_SERVER_QUERY_SERVICE_H_
#define MAGICDB_SERVER_QUERY_SERVICE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/metrics.h"
#include "src/common/statusor.h"
#include "src/db/database.h"
#include "src/parallel/thread_pool.h"
#include "src/server/cursor.h"
#include "src/server/plan_cache.h"
#include "src/server/session.h"

namespace magicdb {

/// Control block of one cursor's producing pipeline (defined in the .cc);
/// successive pump quanta on the shared pool hand it to each other.
struct StreamProducer;
class SpillManager;

/// Construction-time knobs of a QueryService.
struct QueryServiceOptions {
  /// Worker threads in the one shared pool. 0 = hardware concurrency.
  int pool_threads = 0;

  /// Admission tickets: queries running or executing concurrently (queued
  /// submitters beyond this wait FIFO). An open cursor holds its ticket
  /// until closed. 0 = 2 * pool_threads.
  int max_concurrent_queries = 0;

  /// Plan-cache capacity (distinct (options, sql) keys) and how many idle
  /// physical instances each entry pools for reuse.
  size_t plan_cache_entries = 128;
  size_t plan_cache_instances_per_entry = 8;

  /// Rows a producing pipeline pumps per scheduler quantum before yielding
  /// its pool worker to the next queued task (the fair-interleaving knob;
  /// roughly a quarter of MorselSource::kDefaultMorselRows by default).
  int64_t scheduler_quantum_rows = 1024;

  /// Default high-water mark (rows) of a cursor's result queue: once this
  /// many rows are buffered unfetched, the producer is parked until the
  /// consumer drains below the mark. Peak buffered rows are bounded by
  /// this plus one scheduler quantum. Per-query override:
  /// ExecOptions::stream_queue_rows.
  int64_t stream_queue_rows = 8192;

  /// Default per-query memory limit (bytes) for retained execution state
  /// (build tables, spooled tuples, aggregate groups, queued result rows).
  /// A query breaching it fails with kResourceExhausted. 0 = ungoverned.
  /// Per-query override: ExecOptions::memory_limit_bytes.
  int64_t query_memory_limit_bytes = 0;

  /// Directory for spill temp files. When set, a governed query that
  /// breaches its memory limit degrades to out-of-core execution (Grace
  /// hash join, hybrid hash aggregation, external merge sort) instead of
  /// failing — unless the query opts out with ExecOptions::allow_spill =
  /// false. Empty (the default) disables spilling entirely.
  std::string spill_dir;

  /// Write/read batch size of one spill file (bytes); bounds per-file
  /// buffer memory, which is itself charged to the query. 0 = the
  /// SpillConfig default.
  int64_t spill_batch_bytes = 0;

  /// Default rows-per-batch of the vectorized execution path, applied to
  /// queries that leave ExecOptions::batch_size negative. 0 runs every
  /// query tuple-at-a-time. Negative (the default) resolves to 1024 at
  /// construction — or to the MAGICDB_TEST_BATCH_SIZE environment variable
  /// when set, so a build-script sweep can force batching on or off for
  /// every service in the process without touching call sites.
  int64_t default_batch_size = -1;

  /// Weighted-fair admission: relative capacity shares of the three
  /// priority classes while queries are queued (an idle service admits
  /// everything immediately regardless). Clamped up to 1 at construction.
  int admission_weight_high = 8;
  int admission_weight_normal = 4;
  int admission_weight_background = 1;

  /// Load-shedding high-water mark on queued (not yet admitted) queries: a
  /// non-high-priority submission arriving while this many waiters are
  /// queued is rejected immediately with kUnavailable carrying a
  /// machine-readable `retry_after_us=` hint, instead of queueing
  /// unboundedly. 0 (the default) disables the trigger — or defers to the
  /// MAGICDB_TEST_SHED_QUEUE_DEPTH environment variable when set, so a
  /// build-script sweep can impose overload on the whole suite. Negative
  /// explicitly disables, overriding the environment.
  int shed_queue_depth = 0;

  /// Load-shedding high-water mark on the *estimated* admission wait
  /// (microseconds), computed from the queue depth and an EWMA of recent
  /// query latency. Same shed semantics and kUnavailable hint as
  /// shed_queue_depth. 0 (the default) disables; negative explicitly
  /// disables.
  int64_t shed_wait_estimate_us = 0;

  /// Service-wide memory ceiling (bytes): admission blocks a governed
  /// query while the sum of admitted queries' effective memory limits
  /// would exceed this, so concurrent governed queries cannot collectively
  /// overcommit the node. A single query whose limit alone exceeds the
  /// ceiling fails with kResourceExhausted. Ungoverned queries (no memory
  /// limit) are not claimed against it. 0 = unlimited.
  int64_t service_memory_ceiling_bytes = 0;

  /// Service-wide spill disk budget (bytes) across every live spill file
  /// (SpillConfig::disk_budget_bytes). A query whose frame flush would
  /// exceed it fails with kResourceExhausted; bystanders are unaffected
  /// and the budget frees as queries close. 0 = unbounded.
  int64_t spill_disk_budget_bytes = 0;

  /// Stuck-query watchdog: cancel a query whose progress heartbeat (rows,
  /// batches, spill bytes) has not advanced for this long. Parked
  /// producers (consumer backpressure) and finished streams are exempt.
  /// Zero (the default) disables the watchdog entirely — no thread is
  /// started.
  std::chrono::milliseconds watchdog_stall_timeout{0};

  /// How often the watchdog samples heartbeats (only meaningful with a
  /// non-zero stall timeout). 0 = a quarter of the stall timeout.
  std::chrono::milliseconds watchdog_poll_interval{0};
};

/// Point-in-time view of the service counters (see also MetricsText()).
struct ServiceStats {
  int pool_threads = 0;
  int64_t queries_submitted = 0;
  int64_t queries_admitted = 0;
  int64_t queries_completed = 0;
  int64_t queries_failed = 0;
  int64_t queries_cancelled = 0;
  int64_t deadlines_exceeded = 0;
  /// Queries that failed their per-query memory limit (kResourceExhausted).
  int64_t queries_resource_exhausted = 0;
  /// DDL-staleness replans Query() performed (each with backoff).
  int64_t query_ddl_retries = 0;
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t plan_instance_reuses = 0;
  int64_t sched_quanta = 0;
  int64_t morsels_stolen = 0;
  int64_t ddl_epoch = 0;
  /// Streaming-cursor series: cursors ever opened, cursors open right now,
  /// rows delivered through Fetch, producer suspensions on a full result
  /// queue, and cursors that failed because DDL staled their plan.
  int64_t cursors_opened = 0;
  int64_t open_cursors = 0;
  int64_t rows_streamed = 0;
  int64_t cursor_producer_parks = 0;
  int64_t cursors_stale = 0;
  /// Parallel queries (requested dop > 1) that ran sequentially, total and
  /// broken down by sanitized fallback reason — a sequential regression
  /// shows up here instead of silently shifting latencies.
  int64_t parallel_fallbacks = 0;
  std::map<std::string, int64_t> parallel_fallback_reasons;
  /// Runtime re-optimizations performed (one per abandoned attempt), total
  /// and broken down by the sanitized trigger site
  /// (`magicdb_server_reoptimizations_total{reason=...}`).
  int64_t reoptimizations = 0;
  std::map<std::string, int64_t> reoptimization_reasons;
  /// Plan-cache traffic broken down by the join-order backend that planned
  /// the statement ({backend=...} labels on the hit/miss counters).
  std::map<std::string, int64_t> plan_cache_hits_by_backend;
  std::map<std::string, int64_t> plan_cache_misses_by_backend;
  /// Spill subsystem totals (magicdb_spill_*): bytes moved through spill
  /// files, files/partitions created, deepest recursive partitioning level
  /// seen, and queries that actually spilled.
  int64_t spill_bytes_written = 0;
  int64_t spill_bytes_read = 0;
  int64_t spill_files_created = 0;
  int64_t spill_partitions_opened = 0;
  int64_t spill_recursion_depth_max = 0;
  int64_t spilled_queries = 0;
  /// Live admission state: tickets currently held (admitted queries and
  /// open cursors) and gang slots reserved by running parallel gangs. Both
  /// must return to zero when every cursor is closed — the invariant the
  /// chaos tests assert after each injected fault.
  int active_queries = 0;
  int used_gang_slots = 0;
  /// Overload-resilience series: queries waiting in the admission queue
  /// right now, queries rejected by load shedding (total and by reason),
  /// wrapper retries after a shed, watchdog kills (total and by reason),
  /// bytes currently claimed against the service memory ceiling, the spill
  /// disk budget/occupancy/rejections, and whether the service is
  /// draining (Shutdown() called).
  int queued_queries = 0;
  int64_t queries_shed = 0;
  std::map<std::string, int64_t> shed_reasons;
  int64_t query_shed_retries = 0;
  int64_t watchdog_cancels = 0;
  std::map<std::string, int64_t> watchdog_cancel_reasons;
  int64_t memory_ceiling_claimed_bytes = 0;
  int64_t spill_disk_budget_bytes = 0;
  int64_t spill_disk_used_bytes = 0;
  int64_t spill_disk_rejections = 0;
  bool draining = false;
  /// Admissions broken down by priority class (weighted-fairness checks).
  std::map<std::string, int64_t> admitted_by_priority;
  /// Per-priority admission-wait quantiles (microseconds), keyed by class
  /// name; present once a class has admitted at least one query.
  std::map<std::string, double> admission_wait_us_p50_by_priority;
  std::map<std::string, double> admission_wait_us_p95_by_priority;
  double admission_wait_us_p50 = 0.0;
  double admission_wait_us_p95 = 0.0;
  double query_latency_us_p50 = 0.0;
  double query_latency_us_p95 = 0.0;
  double query_latency_us_p99 = 0.0;
  double cursor_batch_wait_us_p50 = 0.0;
  double cursor_batch_wait_us_p95 = 0.0;

  std::string ToString() const;
};

/// Concurrent query service over one Database: the missing layer between
/// "embedded library" and "server".
///
///   - One process-wide work-stealing ThreadPool shared by every query
///     (PR 1 created a pool per ExecuteParallel call).
///   - FIFO admission controller: `max_concurrent_queries` tickets, plus
///     gang-slot accounting that keeps the number of potentially blocking
///     parallel workers at or below the pool size — the invariant that
///     makes barrier-synchronized gangs deadlock-free on a shared pool
///     (ThreadPool::RunGang).
///   - Streaming result delivery: Open() returns a Cursor whose Fetch(n)
///     pulls batches incrementally. Producing pipelines run as cooperative
///     quantum tasks that push into a bounded ResultSink and park on its
///     high-water mark, so result memory is bounded by the queue (not the
///     result cardinality) and a slow consumer suspends — never blocks —
///     pool workers. Query() is a fetch-all wrapper over the same path.
///   - Fair scheduling: producers pump `scheduler_quantum_rows` rows per
///     quantum and re-enqueue themselves, so concurrently admitted queries
///     interleave at morsel granularity instead of monopolizing a worker.
///   - SQL-keyed plan cache (per-options fingerprint) invalidated by the
///     catalog DDL epoch; hits skip parse/bind/optimize entirely when an
///     idle physical instance is pooled.
///   - Per-query deadlines and cooperative cancellation threaded through
///     every operator checkpoint and every cursor Fetch; cursor close =
///     cancel + drain, so abandoned consumers free pool resources.
///
/// Results are byte-identical to Database::Query() under the same session
/// options — concatenating a cursor's fetched batches reproduces the exact
/// rows, order, and merged CostCounters at any DoP.
///
/// The service takes over the database for its lifetime: run DDL/loads
/// through Execute()/LoadRows() (serialized against queries; a sequential
/// cursor still producing when DDL lands fails its next Fetch with
/// FailedPrecondition instead of reading replaced catalog objects). Close
/// every cursor before destroying the service.
class QueryService {
 public:
  explicit QueryService(Database* db, const QueryServiceOptions& options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Opens a session initialized with the database's current optimizer
  /// options. The session must not outlive the service. The overload picks
  /// the session's admission priority class (default kNormal).
  std::unique_ptr<Session> CreateSession();
  std::unique_ptr<Session> CreateSession(const SessionOptions& options);

  /// Graceful drain: stops admitting (new and queued submissions fail with
  /// kUnavailable, no retry hint), waits up to `grace` for in-flight
  /// queries to finish and their cursors to be closed, then cancels the
  /// stragglers' tokens and waits up to `grace` again. Returns OK once
  /// every ticket and gang slot is released (asserted); kDeadlineExceeded
  /// if open cursors remain — their clients must still Close() them.
  /// Idempotent; the service stays drained afterwards.
  Status Shutdown(
      std::chrono::milliseconds grace = std::chrono::milliseconds(5000));

  /// DDL (CREATE TABLE / CREATE VIEW), serialized against running queries;
  /// bumps the catalog epoch and thereby invalidates cached plans.
  Status Execute(const std::string& ddl);

  /// Bulk load + ANALYZE, serialized against running queries. Also bumps
  /// the epoch: fresh statistics may change plan choice.
  Status LoadRows(const std::string& table, std::vector<Tuple> rows);

  /// Opens a streaming cursor for one SELECT; Session::Open forwards here.
  /// Admission, planning, and (for dop > 1) the parallel gang all happen
  /// before this returns; rows are then pulled with Cursor::Fetch.
  StatusOr<Cursor> Open(Session* session, const std::string& sql,
                        const ExecOptions& exec = {});

  /// Fetch-all convenience over Open(): opens a cursor, drains it, and
  /// assembles the classic QueryResult. Session::Query forwards here.
  StatusOr<QueryResult> Query(Session* session, const std::string& sql,
                              const ExecOptions& exec = {});

  /// Parse/bind validation under the DDL lock (prepared statements).
  Status ValidateSelect(const std::string& sql);

  /// Plans under the DDL lock; returns the EXPLAIN text.
  StatusOr<std::string> Explain(const std::string& sql,
                                const OptimizerOptions& options);

  Database* database() { return db_; }
  ThreadPool* pool() { return pool_.get(); }
  MetricsRegistry* metrics() { return &metrics_; }

  ServiceStats StatsSnapshot() const;
  std::string MetricsText() const;

  int pool_threads() const { return pool_->size(); }

 private:
  friend class Cursor;

  /// Load-shedding gate, evaluated before a submission queues: under the
  /// configured high-water marks a non-high-priority query is rejected
  /// with kUnavailable carrying a `retry_after_us=` hint. kHigh queries
  /// are never shed. Failpoint site: `admission.shed`.
  Status MaybeShed(SessionPriority priority);

  /// Blocking weighted-fair admission: one FIFO lane per priority class,
  /// served by smallest virtual time (vt advances by scale/weight per
  /// admission, so admission rates under saturation converge to the
  /// configured weight ratios; the head candidate blocks until ticket,
  /// gang-slot, and memory-ceiling capacity all fit — same head-of-line
  /// semantics the strict-FIFO controller had, so gangs cannot starve).
  /// `gang_slots` is 0 for sequential queries and the effective dop for
  /// parallel ones; `memory_claim` is the query's effective memory limit,
  /// claimed against the service memory ceiling until release. Returns
  /// non-OK when `token` fires while queued or the service drains; records
  /// the wait in the aggregate and per-priority admission histograms.
  Status Admit(SessionPriority priority, int gang_slots, int64_t memory_claim,
               const CancelToken* token);
  /// Gang slots are released as soon as the worker gang finishes (inside
  /// Open); the admission ticket and memory-ceiling claim are held until
  /// the cursor closes.
  void ReleaseGangSlots(int gang_slots);
  void ReleaseTicket(int64_t memory_claim);

  /// Total queued waiters across classes; callers hold admit_mu_.
  int64_t QueuedLocked() const;
  /// Estimated admission wait of a new arrival (microseconds), from the
  /// queue depth and the EWMA of recent query latency; admit_mu_ held.
  int64_t EstimateAdmissionWaitUsLocked() const;
  /// The non-empty lane the weighted-fair scheduler serves next (smallest
  /// virtual time, ties by smallest head ticket); -1 when all lanes are
  /// empty. Callers hold admit_mu_.
  int PickClassLocked() const;

  /// Counts one shed: bumps the total plus
  /// `magicdb_server_sheds_total{reason=...}`.
  void RecordShed(const char* reason);

  /// Live-query registry (graceful drain + stuck-query watchdog): every
  /// open cursor is registered from OpenAdmitted until CloseCursor.
  uint64_t RegisterLiveQuery(const std::shared_ptr<CursorState>& state);
  void UnregisterLiveQuery(uint64_t watch_id);

  /// Watchdog thread body: samples every live query's heartbeat each poll
  /// interval and cancels (CancelToken::CancelStalled) those that made no
  /// progress for watchdog_stall_timeout, skipping parked producers and
  /// finished streams. Failpoint site: `watchdog.fire`.
  void WatchdogLoop();

  /// Plans the query and starts its producer; always releases `gang_slots`
  /// before returning (the gang, if any, has finished by then). On success
  /// the returned cursor owns the admission ticket.
  StatusOr<Cursor> OpenAdmitted(Session* session, const std::string& sql,
                                const ExecOptions& exec,
                                const CancelTokenPtr& token,
                                int effective_dop, int gang_slots);

  /// One cooperative scheduler quantum of a cursor's producer: park on a
  /// full sink, re-check cancellation and the catalog epoch, pump up to
  /// `scheduler_quantum_rows` rows into the sink, then yield (re-enqueue)
  /// or finish the stream.
  void PumpQuantum(const std::shared_ptr<StreamProducer>& p);
  void SubmitProducer(const std::shared_ptr<StreamProducer>& p);
  void FinishProducer(const std::shared_ptr<StreamProducer>& p,
                      Status status);

  // Cursor plumbing (called through the Cursor handle).
  StatusOr<std::vector<Tuple>> FetchFromCursor(CursorState* cursor,
                                               int64_t max_rows);
  Status CloseCursor(CursorState* cursor);

  /// One open -> fetch-all -> close pass; Query() retries it when DDL
  /// stales the stream mid-drain (an explicit Cursor surfaces that error
  /// to its caller instead — only the wrapper, which has delivered nothing
  /// yet, may restart transparently).
  StatusOr<QueryResult> QueryViaCursor(Session* session,
                                       const std::string& sql,
                                       const ExecOptions& exec);

  /// Counts one parallel-requested query that fell back to sequential:
  /// bumps the total plus a per-reason counter
  /// (`magicdb_server_parallel_fallbacks_total{reason=...}`).
  void RecordParallelFallback(const std::string& reason);

  /// Counts one runtime re-optimization: bumps the total plus a per-reason
  /// counter (`magicdb_server_reoptimizations_total{reason=...}`, the
  /// reason being the sanitized trigger-site prefix of the
  /// kReoptimizeRequested status message).
  void RecordReoptimization(const std::string& reason);

  /// Copies the SpillManager's atomics into the magicdb_spill_* mirror
  /// counters (no-op without a spill area).
  void SyncSpillMetrics() const;

  Database* db_;
  QueryServiceOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  PlanCache plan_cache_;

  /// Shared spill area for every governed query; null when
  /// QueryServiceOptions::spill_dir is empty (spilling disabled).
  std::shared_ptr<SpillManager> spill_manager_;

  /// DDL/loads hold this exclusive; planning and every producer quantum
  /// hold it shared (a quantum, not a query, is the read-side critical
  /// section — that is what lets DDL run while cursors are open).
  std::shared_mutex ddl_mu_;

  // Admission state. Mutable so StatsSnapshot (const) can read the live
  // ticket/gang-slot occupancy under it.
  mutable std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  /// One FIFO lane of waiter tickets per priority class plus its virtual
  /// time; the weighted-fair scheduler serves the non-empty lane with the
  /// smallest vt (ties: smallest head ticket, i.e. global FIFO).
  struct AdmissionLane {
    std::deque<uint64_t> waiters;
    int64_t virtual_time = 0;
  };
  std::array<AdmissionLane, kNumSessionPriorities> admit_lanes_;
  std::array<int, kNumSessionPriorities> admission_weights_{1, 1, 1};
  uint64_t next_ticket_ = 0;
  int active_queries_ = 0;
  int used_gang_slots_ = 0;
  /// Sum of admitted governed queries' memory limits, gated by the
  /// service-wide ceiling.
  int64_t memory_ceiling_claimed_ = 0;
  /// Set by Shutdown(): admission rejects everything (queued waiters
  /// included) with kUnavailable.
  bool draining_ = false;
  /// EWMA of completed-query latency (microseconds), feeding the estimated
  /// admission wait behind shed_wait_estimate_us and the retry-after hint.
  std::atomic<int64_t> ewma_query_latency_us_{0};

  /// Live-query registry: graceful drain cancels through it; the watchdog
  /// samples it. Entries carry their own sampling state.
  struct LiveQueryEntry {
    std::shared_ptr<CursorState> state;
    int64_t last_heartbeat = 0;
    std::chrono::steady_clock::time_point last_advance;
    bool cancelled_by_watchdog = false;
  };
  mutable std::mutex live_mu_;
  std::map<uint64_t, LiveQueryEntry> live_queries_;
  uint64_t next_watch_id_ = 1;

  // Watchdog thread (started only with a non-zero stall timeout).
  std::thread watchdog_thread_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  std::atomic<int64_t> next_session_id_{1};

  MetricsRegistry metrics_;
  // Hot-path metric pointers (stable; registry owns them).
  Counter* queries_submitted_;
  Counter* queries_admitted_;
  Counter* queries_completed_;
  Counter* queries_failed_;
  Counter* queries_cancelled_;
  Counter* deadlines_exceeded_;
  Counter* queries_resource_exhausted_;
  Counter* query_ddl_retries_;
  Counter* plan_cache_hits_;
  Counter* plan_cache_misses_;
  Counter* plan_instance_reuses_;
  Counter* sched_quanta_;
  Counter* morsels_stolen_;
  Counter* parallel_fallbacks_;
  Counter* reoptimizations_;
  Counter* cursors_opened_;
  Counter* open_cursors_;  // gauge: +1 at Open, -1 at Close
  Counter* rows_streamed_;
  Counter* cursor_parks_;
  Counter* cursors_stale_;
  // Spill series: mirrors of the SpillManager atomics (set, not
  // incremented, in StatsSnapshot/MetricsText) plus the spilled-query
  // count the service tracks itself at cursor close.
  Counter* spill_bytes_written_;
  Counter* spill_bytes_read_;
  Counter* spill_files_created_;
  Counter* spill_partitions_opened_;
  Counter* spill_recursion_depth_max_;
  Counter* spilled_queries_;
  // Overload-resilience series: sheds, shed retries, watchdog kills, spill
  // disk budget gauges (mirrored from the SpillManager like the other
  // spill counters), and the memory-ceiling claim gauge.
  Counter* queries_shed_;
  Counter* query_shed_retries_;
  Counter* watchdog_cancels_;
  Counter* spill_disk_budget_bytes_;
  Counter* spill_disk_used_bytes_;
  Counter* spill_disk_rejections_;
  Counter* memory_ceiling_claimed_bytes_;
  LatencyHistogram* admission_wait_us_;
  /// Per-priority admission-wait histograms, indexed by SessionPriority.
  std::array<LatencyHistogram*, kNumSessionPriorities>
      admission_wait_us_by_priority_{};
  /// Per-priority admission counters
  /// (`magicdb_server_queries_admitted_total{priority=...}`).
  std::array<Counter*, kNumSessionPriorities> admitted_by_priority_{};
  LatencyHistogram* query_latency_us_;
  LatencyHistogram* cursor_batch_wait_us_;
  /// Peak tracked bytes per governed query, observed at cursor close.
  LatencyHistogram* query_memory_bytes_;
};

}  // namespace magicdb

#endif  // MAGICDB_SERVER_QUERY_SERVICE_H_
