#ifndef MAGICDB_SERVER_PLAN_CACHE_H_
#define MAGICDB_SERVER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/db/database.h"

namespace magicdb {

/// Everything a cache hit reuses without re-planning: the bound logical
/// plan (immutable, shared) plus the optimizer's outputs for it. The
/// physical instances live next to this in the cache entry.
struct CachedPlanMeta {
  BoundSelect bound;
  Schema schema;
  std::string explain;
  double est_cost = 0.0;
  double est_rows = 0.0;
  std::vector<FilterJoinCostBreakdown> filter_joins;
  OptimizerStats optimizer_stats;
};

/// SQL-keyed plan cache with LRU eviction. The key must already embed the
/// session's OptimizerOptions fingerprint (see OptimizerOptionsFingerprint)
/// so sessions with different knobs never share plans.
///
/// Validity is keyed on the catalog DDL epoch: an entry created at epoch E
/// is dead the moment the catalog reports a newer epoch (DDL or ANALYZE),
/// making stale-plan reuse structurally impossible — Lookup drops the entry
/// and reports a miss, and CheckIn refuses instances from an old epoch.
///
/// Besides the metadata, an entry pools *idle physical instances*: fully
/// built operator trees checked in after a successful sequential execution.
/// Volcano operators re-initialize completely in Open(), so re-running a
/// checked-in tree is byte-identical to a freshly planned one (the
/// optimizer is deterministic). Instances that ran parallel are never
/// checked in — shared morsel/build wiring survives Close() and must not
/// leak into a later run.
///
/// Thread-safe; every method takes one internal lock.
class PlanCache {
 public:
  explicit PlanCache(size_t max_entries = 128,
                     size_t max_idle_instances = 8)
      : max_entries_(max_entries == 0 ? 1 : max_entries),
        max_idle_instances_(max_idle_instances) {}

  /// On hit: copies the metadata, pops an idle instance into `*instance`
  /// when one is pooled (nullptr otherwise), refreshes LRU recency, and
  /// returns true. On miss (absent or stale): returns false.
  bool Lookup(const std::string& key, int64_t epoch, CachedPlanMeta* meta,
              OpPtr* instance);

  /// Installs (or refreshes) the entry for `key` after a miss was planned.
  void Insert(const std::string& key, int64_t epoch, CachedPlanMeta meta);

  /// Returns an executed instance to the entry's idle pool. Dropped
  /// silently when the entry vanished, the epoch moved on, or the pool is
  /// full.
  void CheckIn(const std::string& key, int64_t epoch, OpPtr instance);

  /// Drops every entry (tests).
  void Clear();

  size_t size() const;
  int64_t evictions() const;

 private:
  struct Entry {
    int64_t epoch = 0;
    CachedPlanMeta meta;
    std::vector<OpPtr> idle_instances;
    std::list<std::string>::iterator lru_pos;
  };

  void EvictIfNeeded();  // caller holds mu_

  mutable std::mutex mu_;
  const size_t max_entries_;
  const size_t max_idle_instances_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  int64_t evictions_ = 0;
};

}  // namespace magicdb

#endif  // MAGICDB_SERVER_PLAN_CACHE_H_
