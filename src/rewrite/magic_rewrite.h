#ifndef MAGICDB_REWRITE_MAGIC_REWRITE_H_
#define MAGICDB_REWRITE_MAGIC_REWRITE_H_

#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/statusor.h"
#include "src/plan/logical_plan.h"

namespace magicdb {

/// How the pushed restriction is expressed at the anchor point.
enum class RewriteStyle {
  /// Semi-join membership probe (FilterSetProbeNode). Works for both exact
  /// and Bloom filter sets, but the restricted plan still enumerates the
  /// anchor relation and filters it.
  kProbe,
  /// The filter set becomes an additional join input (FilterSetRefNode)
  /// with equality predicates on the keys, projected away afterwards —
  /// the literal shape of Figure 2's RestrictedDepAvgSal. Requires an
  /// exact (scannable) filter set, and lets the nested optimizer drive the
  /// anchor relation through an index with |F| probes.
  kJoin,
};

/// Magic-sets rewriting as a plan transformation (the algebra of the
/// paper): given a virtual relation's plan and the output columns that will
/// be bound by a filter set, produce the *restricted* plan — the plan with
/// the restriction pushed as deep as correctness allows:
///
///  * below Project when every key column maps to a pure column reference;
///  * below Aggregate when the keys are a subset of the group-by columns
///    (restricting groups before aggregation equals restricting after,
///    because the group key determines membership — this is the step that
///    turns DepAvgSal into RestrictedDepAvgSal in Figure 2);
///  * below Filter / Distinct / Sort unconditionally;
///  * into the single NaryJoin input that produces all key columns.
///
/// The result has the same schema and, for any bound filter set F, produces
/// exactly the tuples of the original plan whose key columns fall in F
/// (a superset when F is a lossy Bloom binding).
/// With a `catalog`, scans of views are expanded in place so the
/// restriction can push through stacked views (§2.1: "if Emp itself were
/// really a view") — the inlined view body is positionally identical to
/// the scan it replaces.
StatusOr<LogicalPtr> MagicRewrite(const LogicalPtr& plan,
                                  const std::vector<int>& key_columns,
                                  const std::string& binding_id,
                                  RewriteStyle style = RewriteStyle::kProbe,
                                  const Catalog* catalog = nullptr);

/// Depth (number of nodes) below which the probe was pushed in the last
/// rewrite of `plan` — diagnostic for tests: 0 means the probe sits at the
/// root (no push-down was possible).
int ProbeDepth(const LogicalPtr& rewritten);

}  // namespace magicdb

#endif  // MAGICDB_REWRITE_MAGIC_REWRITE_H_
