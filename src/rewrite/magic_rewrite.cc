#include "src/rewrite/magic_rewrite.h"

#include "src/common/logging.h"

namespace magicdb {

namespace {

/// Anchors the restriction at `node`. kProbe wraps with a membership
/// probe; kJoin adds the filter set as a join input with key-equality
/// predicates and projects its columns away again (Figure 2's shape).
LogicalPtr RestrictHere(const LogicalPtr& node, const std::vector<int>& keys,
                        const std::string& binding_id, RewriteStyle style) {
  if (style == RewriteStyle::kProbe) {
    return std::make_shared<FilterSetProbeNode>(node, binding_id, keys);
  }
  // Join style: NaryJoin([node, F], node.key[i] = F.col[i]) projected back
  // onto node's schema. F holds distinct keys, so no duplicates appear.
  Schema f_schema;
  for (size_t i = 0; i < keys.size(); ++i) {
    Column c = node->schema().column(keys[i]);
    c.qualifier = "F";
    f_schema.AddColumn(c);
  }
  auto fref = std::make_shared<FilterSetRefNode>(binding_id, f_schema);
  Schema block = node->schema().Concat(f_schema);
  const int n = node->schema().num_columns();
  std::vector<ExprPtr> eqs;
  for (size_t i = 0; i < keys.size(); ++i) {
    eqs.push_back(MakeComparison(
        CompareOp::kEq,
        MakeColumnRef(keys[i], block.column(keys[i]).type,
                      block.column(keys[i]).QualifiedName()),
        MakeColumnRef(n + static_cast<int>(i),
                      block.column(n + static_cast<int>(i)).type,
                      block.column(n + static_cast<int>(i)).QualifiedName())));
  }
  auto join = std::make_shared<NaryJoinNode>(
      std::vector<LogicalPtr>{node, fref}, ConjoinAll(eqs), block);
  std::vector<ExprPtr> out_exprs;
  for (int c = 0; c < n; ++c) {
    out_exprs.push_back(MakeColumnRef(c, block.column(c).type,
                                      block.column(c).QualifiedName()));
  }
  return std::make_shared<ProjectNode>(join, out_exprs, node->schema());
}

/// Maps `keys` (output columns of a Project/Aggregate) to input columns;
/// returns false if any key is computed by a non-trivial expression.
bool MapThroughExprs(const std::vector<ExprPtr>& exprs,
                     const std::vector<int>& keys,
                     std::vector<int>* mapped) {
  mapped->clear();
  for (int k : keys) {
    if (k < 0 || k >= static_cast<int>(exprs.size())) return false;
    const Expr* e = exprs[k].get();
    if (e == nullptr || e->kind() != ExprKind::kColumnRef) return false;
    mapped->push_back(static_cast<const ColumnRefExpr*>(e)->index());
  }
  return true;
}

StatusOr<LogicalPtr> Rewrite(const LogicalPtr& node,
                             const std::vector<int>& keys,
                             const std::string& binding_id,
                             RewriteStyle style, const Catalog* catalog,
                             int depth) {
  if (depth > 16) {
    return Status::Internal("magic rewrite recursion too deep");
  }
  for (int k : keys) {
    if (k < 0 || k >= node->schema().num_columns()) {
      return Status::InvalidArgument(
          "magic rewrite key column out of range: " + std::to_string(k));
    }
  }
  switch (node->kind()) {
    case LogicalKind::kFilter: {
      const auto* filter = static_cast<const FilterNode*>(node.get());
      MAGICDB_ASSIGN_OR_RETURN(
          LogicalPtr child, Rewrite(node->children()[0], keys, binding_id, style, catalog, depth + 1));
      return LogicalPtr(
          std::make_shared<FilterNode>(child, filter->predicate()));
    }
    case LogicalKind::kDistinct: {
      MAGICDB_ASSIGN_OR_RETURN(
          LogicalPtr child, Rewrite(node->children()[0], keys, binding_id, style, catalog, depth + 1));
      return LogicalPtr(std::make_shared<DistinctNode>(child));
    }
    case LogicalKind::kSort: {
      const auto* sort = static_cast<const SortNode*>(node.get());
      MAGICDB_ASSIGN_OR_RETURN(
          LogicalPtr child, Rewrite(node->children()[0], keys, binding_id, style, catalog, depth + 1));
      return LogicalPtr(std::make_shared<SortNode>(child, sort->keys()));
    }
    case LogicalKind::kProject: {
      const auto* project = static_cast<const ProjectNode*>(node.get());
      std::vector<int> mapped;
      if (!MapThroughExprs(project->exprs(), keys, &mapped)) {
        return RestrictHere(node, keys, binding_id, style);
      }
      MAGICDB_ASSIGN_OR_RETURN(
          LogicalPtr child, Rewrite(node->children()[0], mapped, binding_id, style, catalog, depth + 1));
      return LogicalPtr(std::make_shared<ProjectNode>(
          child, project->exprs(), project->schema()));
    }
    case LogicalKind::kAggregate: {
      const auto* agg = static_cast<const AggregateNode*>(node.get());
      // Output layout: group-by columns first. Keys must all be group-by
      // columns that are pure column refs of the child.
      const int num_groups = static_cast<int>(agg->group_by().size());
      bool pushable = true;
      std::vector<int> mapped;
      for (int k : keys) {
        if (k >= num_groups) {
          pushable = false;
          break;
        }
        const Expr* e = agg->group_by()[k].get();
        if (e == nullptr || e->kind() != ExprKind::kColumnRef) {
          pushable = false;
          break;
        }
        mapped.push_back(static_cast<const ColumnRefExpr*>(e)->index());
      }
      if (!pushable) return RestrictHere(node, keys, binding_id, style);
      MAGICDB_ASSIGN_OR_RETURN(
          LogicalPtr child, Rewrite(node->children()[0], mapped, binding_id, style, catalog, depth + 1));
      return LogicalPtr(std::make_shared<AggregateNode>(
          child, agg->group_by(), agg->aggs(), agg->schema()));
    }
    case LogicalKind::kNaryJoin: {
      const auto* join = static_cast<const NaryJoinNode*>(node.get());
      // Find the single input whose column range covers every key.
      int offset = 0;
      int target = -1;
      int target_offset = 0;
      for (size_t c = 0; c < join->children().size(); ++c) {
        const int width = join->children()[c]->schema().num_columns();
        bool covers_all = true;
        for (int k : keys) {
          if (k < offset || k >= offset + width) {
            covers_all = false;
            break;
          }
        }
        if (covers_all) {
          target = static_cast<int>(c);
          target_offset = offset;
          break;
        }
        offset += width;
      }
      if (target < 0) return RestrictHere(node, keys, binding_id, style);
      std::vector<int> shifted;
      shifted.reserve(keys.size());
      for (int k : keys) shifted.push_back(k - target_offset);
      MAGICDB_ASSIGN_OR_RETURN(
          LogicalPtr child,
          Rewrite(join->children()[target], shifted, binding_id, style, catalog,
                  depth + 1));
      std::vector<LogicalPtr> inputs = join->children();
      inputs[target] = child;
      return LogicalPtr(std::make_shared<NaryJoinNode>(
          std::move(inputs), join->predicate(), join->schema()));
    }
    case LogicalKind::kRelScan: {
      // Stacked views: inline the view body (positionally identical to the
      // scan) and keep pushing the restriction inside it.
      if (catalog != nullptr) {
        const auto* scan = static_cast<const RelScanNode*>(node.get());
        auto entry = catalog->Lookup(scan->relation_name());
        if (entry.ok() && (*entry)->kind == CatalogEntry::Kind::kView) {
          return Rewrite((*entry)->view_plan, keys, binding_id, style,
                         catalog, depth + 1);
        }
      }
      return RestrictHere(node, keys, binding_id, style);
    }
    case LogicalKind::kFilterSetRef:
    case LogicalKind::kFilterSetProbe:
      return RestrictHere(node, keys, binding_id, style);
  }
  return Status::Internal("unhandled logical node kind in magic rewrite");
}

int ProbeDepthInternal(const LogicalNode& node, int depth) {
  if (node.kind() == LogicalKind::kFilterSetProbe ||
      node.kind() == LogicalKind::kFilterSetRef) {
    return depth;
  }
  for (const LogicalPtr& c : node.children()) {
    const int d = ProbeDepthInternal(*c, depth + 1);
    if (d >= 0) return d;
  }
  return -1;
}

}  // namespace

StatusOr<LogicalPtr> MagicRewrite(const LogicalPtr& plan,
                                  const std::vector<int>& key_columns,
                                  const std::string& binding_id,
                                  RewriteStyle style, const Catalog* catalog) {
  if (!plan) return Status::InvalidArgument("magic rewrite of null plan");
  if (key_columns.empty()) {
    return Status::InvalidArgument("magic rewrite needs at least one key");
  }
  return Rewrite(plan, key_columns, binding_id, style, catalog, 0);
}

int ProbeDepth(const LogicalPtr& rewritten) {
  if (!rewritten) return -1;
  return ProbeDepthInternal(*rewritten, 0);
}

}  // namespace magicdb
