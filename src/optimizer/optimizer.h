#ifndef MAGICDB_OPTIMIZER_OPTIMIZER_H_
#define MAGICDB_OPTIMIZER_OPTIMIZER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/statusor.h"
#include "src/exec/operator.h"
#include "src/optimizer/cost_model.h"
#include "src/optimizer/optimizer_options.h"
#include "src/plan/logical_plan.h"

namespace magicdb {

struct CardinalityOverlay;

/// Result of optimizing a logical plan: an executable operator tree plus
/// the optimizer's estimates and diagnostics.
struct OptimizedPlan {
  OpPtr root;
  double est_cost = 0.0;
  double est_rows = 0.0;
  /// Physical plan rendering (operator tree with estimates).
  std::string explain;
  /// Table-1 breakdowns of every Filter Join in the chosen plan,
  /// outermost first.
  std::vector<FilterJoinCostBreakdown> filter_joins;
};

/// One left-deep join order with its best costs; produced by
/// EnumerateJoinOrders for the Figure-3 experiment.
struct JoinOrderCost {
  std::vector<std::string> order;  // input aliases, outermost first
  double cost_without_filter_join = 0.0;
  double cost_with_filter_join = 0.0;
  std::string methods_without;  // method chain, e.g. "E *HJ* D *HJ* V"
  std::string methods_with;
};

/// System-R style dynamic-programming optimizer over left-deep join trees,
/// extended with the Filter Join method of the paper. Thread-compatible;
/// create one per query or reuse sequentially.
class Optimizer {
 public:
  explicit Optimizer(const Catalog* catalog, OptimizerOptions options = {});
  ~Optimizer();

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Optimizes a bound logical plan into an executable operator tree.
  StatusOr<OptimizedPlan> Optimize(const LogicalPtr& plan);

  /// Optimizes a plan that contains FilterSetRef/FilterSetProbe nodes
  /// (e.g. the output of MagicRewrite), assuming each named binding holds
  /// `assumed_rows[binding]` distinct keys. Execution must bind matching
  /// filter sets into the ExecContext before opening the returned plan.
  StatusOr<OptimizedPlan> OptimizeWithFilterSets(
      const LogicalPtr& plan,
      const std::map<std::string, double>& assumed_rows);

  /// Diagnostic (Figure 3 / E2): exhaustively costs every left-deep join
  /// order of the topmost join block in `plan`, with and without the Filter
  /// Join method. Requires the block to have at most 8 inputs.
  StatusOr<std::vector<JoinOrderCost>> EnumerateJoinOrders(
      const LogicalPtr& plan);

  const OptimizerOptions& options() const { return options_; }
  OptimizerOptions* mutable_options() { return &options_; }
  const OptimizerStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Installs a cardinality overlay: observed row counts (keyed by feedback
  /// scan key, see src/stats/feedback_store.h) that override the stats-based
  /// base estimates of matching join-block inputs. The overlay must outlive
  /// the Optimize call; nullptr clears it. Runtime re-optimization plans
  /// with the per-query ledger folded in here.
  void set_cardinality_overlay(const CardinalityOverlay* overlay);

  /// Private implementation; opaque outside the optimizer sources. Public
  /// only so the JoinOrderBackend interface (src/optimizer/
  /// join_order_backend.h) can reference it in signatures.
  class Impl;

 private:
  std::unique_ptr<Impl> impl_;
  OptimizerOptions options_;
  OptimizerStats stats_;
  const Catalog* catalog_;
};

}  // namespace magicdb

#endif  // MAGICDB_OPTIMIZER_OPTIMIZER_H_
