#include "src/optimizer/cost_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace magicdb {

double Estimate::PagesForRowsD(double rows, int64_t width_bytes) {
  if (rows <= 0) return 0.0;
  const double rpp = static_cast<double>(RowsPerPage(width_bytes));
  return std::ceil(rows / rpp);
}

namespace costs {

double SeqScan(double rows, int64_t width_bytes, int dop) {
  const double d = dop > 1 ? static_cast<double>(dop) : 1.0;
  return Estimate::PagesForRowsD(rows, width_bytes) +
         CostConstants::kCpuTupleCost * rows / d;
}

double MaterializeWrite(double rows, int64_t width_bytes) {
  return Estimate::PagesForRowsD(rows, width_bytes);
}

double SpoolRead(double rows, int64_t width_bytes) {
  return Estimate::PagesForRowsD(rows, width_bytes) +
         CostConstants::kCpuTupleCost * rows;
}

double HashBuild(double rows, int dop) {
  const double d = dop > 1 ? static_cast<double>(dop) : 1.0;
  return CostConstants::kCpuHashCost * rows / d;
}

double HashProbe(double probes, double out_rows, int dop) {
  const double d = dop > 1 ? static_cast<double>(dop) : 1.0;
  return (CostConstants::kCpuHashCost * probes +
          CostConstants::kCpuTupleCost * out_rows) /
         d;
}

double HashAggregate(double input_rows, double exprs, double groups,
                     int dop) {
  const double d = dop > 1 ? static_cast<double>(dop) : 1.0;
  return (CostConstants::kCpuHashCost * input_rows +
          CostConstants::kCpuExprCost * exprs +
          CostConstants::kCpuTupleCost * groups) /
         d;
}

double Sort(double rows, int64_t width_bytes, int64_t memory_budget_bytes) {
  if (rows <= 1) return 0.0;
  double cost =
      CostConstants::kCpuExprCost * rows * std::ceil(std::log2(rows));
  const double bytes = rows * static_cast<double>(width_bytes);
  if (bytes > static_cast<double>(memory_budget_bytes)) {
    // One full write + read of the data per expected external merge pass.
    const double passes = static_cast<double>(
        SpillPasses(bytes, static_cast<double>(memory_budget_bytes)));
    cost += 2.0 * passes * Estimate::PagesForRowsD(rows, width_bytes);
  }
  return cost;
}

double TupleCpu(double rows) { return CostConstants::kCpuTupleCost * rows; }

double ExprEval(double rows) { return CostConstants::kCpuExprCost * rows; }

double Ship(double rows, int64_t width_bytes) {
  if (rows <= 0) return 0.0;
  const double bytes = rows * static_cast<double>(width_bytes);
  // One connection/open message plus one per page of payload; a trailing
  // partial page ships as a short message too (ShipOp flushes it at Close),
  // hence the ceil.
  const double messages =
      1.0 + std::ceil(bytes / CostConstants::kPageSizeBytes);
  return CostConstants::kMessageCost * messages +
         CostConstants::kBytePerCost * bytes;
}

double ShipBytes(double bytes) {
  if (bytes <= 0) return 0.0;
  const double messages =
      1.0 + std::floor(bytes / CostConstants::kPageSizeBytes);
  return CostConstants::kMessageCost * messages +
         CostConstants::kBytePerCost * bytes;
}

double IndexProbe(double matches) {
  // One hash op + one page to reach the bucket, one page + CPU per match.
  return CostConstants::kCpuHashCost + 1.0 +
         matches * (1.0 + CostConstants::kCpuTupleCost);
}

double RemoteProbe(double key_bytes, double matches, int64_t row_width) {
  return 2.0 * CostConstants::kMessageCost +
         CostConstants::kBytePerCost *
             (key_bytes + matches * static_cast<double>(row_width));
}

double FunctionInvoke(double invocations) {
  return CostConstants::kFunctionInvokeCost * invocations;
}

double HashSpill(double build_rows, int64_t build_width, double probe_rows,
                 int64_t probe_width, int64_t memory_budget_bytes) {
  const double build_bytes = build_rows * static_cast<double>(build_width);
  if (build_bytes <= static_cast<double>(memory_budget_bytes)) return 0.0;
  // Both inputs are rewritten once per recursive partitioning pass (the
  // passes Grace hash partitioning needs to shrink each build partition
  // under budget at the configured fanout).
  const double passes = static_cast<double>(
      SpillPasses(build_bytes, static_cast<double>(memory_budget_bytes)));
  return 2.0 * passes * (Estimate::PagesForRowsD(build_rows, build_width) +
                         Estimate::PagesForRowsD(probe_rows, probe_width));
}

double AggregateSpill(double input_rows, int64_t width_bytes,
                      int64_t memory_budget_bytes) {
  const double bytes = input_rows * static_cast<double>(width_bytes);
  if (bytes <= static_cast<double>(memory_budget_bytes)) return 0.0;
  // Partitioning passes when the aggregation input exceeds memory (mirrors
  // the executor's Grace-style charge).
  const double passes = static_cast<double>(
      SpillPasses(bytes, static_cast<double>(memory_budget_bytes)));
  return 2.0 * passes * Estimate::PagesForRowsD(input_rows, width_bytes);
}

double VectorizedCpuFactor(int64_t batch_size) {
  if (batch_size <= 1) return 1.0;
  // Per-tuple interpretation overhead splits into a fixed floor (work that
  // stays per-row: value moves, hashing) and an amortizable share (operator
  // dispatch, virtual calls, cancellation checks) spread over the batch.
  constexpr double kFloor = 0.25;
  return kFloor + (1.0 - kFloor) / static_cast<double>(batch_size);
}

}  // namespace costs

double ExpectedDistinct(double domain, double draws) {
  if (domain <= 0 || draws <= 0) return 0.0;
  if (domain <= 1) return 1.0;
  // d * (1 - (1 - 1/d)^k), numerically stable via expm1/log1p.
  const double log_miss = draws * std::log1p(-1.0 / domain);
  return domain * -std::expm1(log_miss);
}

std::string FilterJoinCostBreakdown::ToString() const {
  std::ostringstream os;
  os << "FilterJoin{JoinCost_P=" << join_cost_p
     << " ProductionCost_P=" << production_cost << " ProjCost_F=" << proj_cost
     << " AvailCost_F=" << avail_cost_f
     << " FilterCost_Rk=" << filter_cost_rk
     << " AvailCost_Rk'=" << avail_cost_rk
     << " FinalJoinCost=" << final_join_cost << " | step_total=" << StepTotal()
     << " |F|=" << filter_set_size << " |Rk'|=" << restricted_rows << "}";
  return os.str();
}

}  // namespace magicdb
