#include "src/optimizer/join_order_backend.h"

#include <cstdint>
#include <utility>

namespace magicdb {

using optimizer_internal::AccessKind;
using optimizer_internal::JoinGraph;
using optimizer_internal::PartialPlan;
using optimizer_internal::PlanContext;
using optimizer_internal::StepMethod;

namespace {

// Methods a backend may try per step. CostJoinStep itself rejects methods
// disabled by options (enable_hash_join etc.) or inapplicable to the input;
// the explicit kFilterJoin/kFnMemo gates below mirror RunDP's.
const StepMethod kStepMethods[] = {
    StepMethod::kNestedLoops, StepMethod::kHash,    StepMethod::kSortMerge,
    StepMethod::kIndexNL,     StepMethod::kFnProbe, StepMethod::kFnMemo,
    StepMethod::kFilterJoin,
};

Status Infeasible() {
  return Status::InvalidArgument(
      "no feasible join plan (is a table function missing argument "
      "bindings?)");
}

/// The exhaustive System-R dynamic program (the default).
class DpBackend final : public JoinOrderBackend {
 public:
  const char* name() const override { return "dp"; }
  const char* description() const override {
    return "exhaustive System-R dynamic programming over left-deep trees";
  }
  StatusOr<PartialPlan> Order(Optimizer::Impl* impl, const JoinGraph& graph,
                              PlanContext* ctx,
                              bool allow_filter_join) const override {
    return impl->RunDP(graph, ctx, allow_filter_join);
  }
};

/// Greedy cheapest-next-step heuristic (IKKBZ-flavored): every feasible
/// input seeds a chain that is extended one join at a time by whichever
/// (inner, method) pair yields the cheapest cumulative plan; the cheapest
/// complete chain across all seeds wins. O(n^3 * methods) step costings
/// instead of the DP's exponential table — can miss orders the DP finds,
/// but shares its cost model exactly.
class GreedyBackend final : public JoinOrderBackend {
 public:
  const char* name() const override { return "greedy"; }
  const char* description() const override {
    return "greedy cheapest-next-step heuristic over left-deep trees";
  }
  StatusOr<PartialPlan> Order(Optimizer::Impl* impl, const JoinGraph& graph,
                              PlanContext* ctx,
                              bool allow_filter_join) const override {
    const int n = static_cast<int>(graph.inputs.size());
    if (n == 1) return impl->AccessPlan(graph, 0);

    bool have_best = false;
    PartialPlan best;
    for (int seed = 0; seed < n; ++seed) {
      if (graph.inputs[seed].access == AccessKind::kFunction) continue;
      auto seeded = impl->AccessPlan(graph, seed);
      if (!seeded.ok()) continue;
      PartialPlan cur = std::move(*seeded);
      uint32_t used = 1u << seed;
      bool feasible = true;
      for (int k = 1; k < n; ++k) {
        bool have_step = false;
        PartialPlan step_best;
        int step_input = -1;
        for (int j = 0; j < n; ++j) {
          if ((used & (1u << j)) != 0) continue;
          for (StepMethod m : kStepMethods) {
            if (m == StepMethod::kFilterJoin && !allow_filter_join) continue;
            if (m == StepMethod::kFnMemo &&
                !impl->options_->enable_function_memo) {
              continue;
            }
            auto r = impl->CostJoinStep(graph, cur, j, m, ctx);
            if (!r.ok()) continue;  // method inapplicable here
            if (!have_step || r->cost < step_best.cost) {
              step_best = std::move(*r);
              step_input = j;
              have_step = true;
            }
          }
        }
        if (!have_step) {
          feasible = false;
          break;
        }
        cur = std::move(step_best);
        used |= 1u << step_input;
      }
      if (!feasible) continue;
      if (!have_best || cur.cost < best.cost) {
        best = std::move(cur);
        have_best = true;
      }
    }
    if (!have_best) return Infeasible();
    return best;
  }
};

const DpBackend kDp;
const GreedyBackend kGreedy;
const JoinOrderBackend* const kBackends[] = {&kDp, &kGreedy};

}  // namespace

const JoinOrderBackend* FindJoinOrderBackend(const std::string& name) {
  for (const JoinOrderBackend* b : kBackends) {
    if (name == b->name()) return b;
  }
  return nullptr;
}

std::vector<std::string> JoinOrderBackendNames() {
  std::vector<std::string> names;
  for (const JoinOrderBackend* b : kBackends) names.emplace_back(b->name());
  return names;
}

}  // namespace magicdb
