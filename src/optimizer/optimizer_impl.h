#ifndef MAGICDB_OPTIMIZER_OPTIMIZER_IMPL_H_
#define MAGICDB_OPTIMIZER_OPTIMIZER_IMPL_H_

// Internal implementation header for the optimizer; not part of the public
// API. Shared by optimizer_node.cc (per-node planning, facade) and
// optimizer_join.cc (join-block dynamic programming and Filter Join
// costing).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/exec/filter_join_op.h"
#include "src/optimizer/optimizer.h"
#include "src/stats/feedback_store.h"

namespace magicdb {
namespace optimizer_internal {

/// Builds a fresh operator tree for a planned (sub)plan. Thunks are
/// re-invocable: each call constructs new operators.
using BuildFn = std::function<StatusOr<OpPtr>()>;

/// Planning context threaded through recursive estimation: assumed
/// cardinalities for magic filter-set bindings referenced by
/// FilterSetRef/FilterSetProbe nodes.
struct PlanContext {
  std::map<std::string, double> filter_set_rows;
  std::map<std::string, double> filter_set_fpr;  // >0 marks Bloom bindings
};

/// Result of planning one logical node: estimates plus an operator builder.
struct Planned {
  Estimate est;
  /// Estimated distinct values per output column.
  std::vector<double> distinct;
  /// Output columns the stream is sorted by, ascending (System R
  /// "interesting order"); empty when unordered. Lets PlanSort elide the
  /// final sort when a sort-merge plan already delivers ORDER BY's order.
  std::vector<int> order_cols;
  BuildFn build;
  Schema schema;
};

/// How one join-block input is accessed.
enum class AccessKind {
  kLocalTable,
  kRemoteTable,
  kView,
  kFunction,
  kSubplan,       // nested non-scan input (e.g. derived table)
  kFilterSetRef,  // magic filter set inside a rewritten view plan
};

/// One FROM-clause input of a join block with its access-path information.
struct InputInfo {
  int id = 0;
  LogicalPtr node;
  const CatalogEntry* entry = nullptr;  // when node is a RelScan
  AccessKind access = AccessKind::kLocalTable;
  int site = kLocalSite;
  std::string alias;
  Schema schema;     // input schema (block slice)
  int col_offset = 0;
  std::vector<ExprPtr> local_preds;  // in input column space

  /// Unrestricted access path (local predicates applied, shipped to the
  /// local site if remote).
  Planned planned;

  /// Base-table figures before local predicates (INL probes the raw
  /// table).
  double base_rows = 0.0;
  double local_selectivity = 1.0;
  std::vector<double> base_distinct;

  bool IsVirtual() const { return access != AccessKind::kLocalTable; }
};

/// Equi-join conjunct decomposed into block-space column pair.
struct EquiEdge {
  int conjunct_id;
  int left_input, right_input;
  int left_col, right_col;  // block columns
};

/// One conjunct of the join block's predicate.
struct Conjunct {
  ExprPtr expr;       // block column space
  uint32_t mask = 0;  // inputs referenced
  bool is_equi = false;
  int equi_edge = -1;  // index into edges when is_equi
};

/// The analyzed join block.
struct JoinGraph {
  std::vector<InputInfo> inputs;
  std::vector<Conjunct> conjuncts;
  std::vector<EquiEdge> edges;
  Schema block_schema;
  int num_block_cols = 0;
  /// Column-equivalence classes induced by the equi edges (transitive
  /// closure); col_class[c] is a representative column id. Implied edges
  /// (E=D and E=V imply D=V) are added to `edges`/`conjuncts` so orders
  /// that join transitively-equal inputs first are not cross products —
  /// the Figure-3 orders 3-4 SIPS depend on this.
  std::vector<int> col_class;
};

/// Join methods a step can use.
enum class StepMethod {
  kAccess,
  kNestedLoops,
  kIndexNL,
  kHash,
  kSortMerge,
  kFilterJoin,
  kFnProbe,
  kFnMemo,
};

const char* StepMethodName(StepMethod m);

struct JoinStep;
using JoinStepPtr = std::shared_ptr<const JoinStep>;

/// A node of the chosen (left-deep) join tree.
struct JoinStep {
  StepMethod method = StepMethod::kAccess;
  int input = -1;            // accessed input (kAccess) or the inner input
  JoinStepPtr outer;         // null for kAccess
  std::vector<std::pair<int, int>> keys;  // block cols (outer, inner)
  std::vector<ExprPtr> residuals;         // block-space conjuncts applied here
  std::vector<int> output_block_cols;     // output layout -> block columns

  /// Sort-merge: the outer arrives presorted on the keys.
  bool smj_outer_presorted = false;

  /// kAccess via an ordered index scan on these table columns (empty =
  /// plain sequential scan). Provides the corresponding interesting order.
  std::vector<int> ordered_scan_cols;

  // Filter Join details.
  FilterSetImpl fs_impl = FilterSetImpl::kExact;
  /// Positions (into `keys`) of the attributes contributing to the filter
  /// set; empty = all (the Limitation-3 default).
  std::vector<int> filter_key_positions;
  std::string binding_id;
  LogicalPtr rewritten_inner;  // magic-rewritten inner plan (views/subplans)
  FilterJoinCostBreakdown breakdown;

  double cost = 0.0;  // cumulative
  double rows = 0.0;
};

/// A DP table entry (also used by the exhaustive enumerator).
struct PartialPlan {
  uint32_t set = 0;
  double cost = 0.0;
  double rows = 0.0;
  int64_t width = 0;
  std::vector<double> distinct;  // block-space, valid for covered inputs
  std::vector<int> order_cols;   // sorted-by block columns (may be empty)
  JoinStepPtr step;
};

/// Feedback identity of a join-block input: the key its observed build
/// cardinality is recorded — and, for overlay-eligible scan:/view: keys,
/// re-planned — under (see src/stats/feedback_store.h). Empty when the
/// input has no stable identity (table functions, filter-set references).
std::string InputFeedbackKey(const InputInfo& in);

/// Parametric costing cache for one virtual inner (§4.2): lazily computed
/// (selectivity, cost, rows) samples at equivalence-class centers.
struct ParametricCache {
  LogicalPtr rewritten;  // magic-rewritten inner plan
  LogicalPtr pinned_node;  // original inner (pins the pointer in the key)
  std::string binding_id;
  double inner_key_domain = 1.0;  // distinct key values in the inner
  struct Sample {
    double selectivity;
    double cost;
    double rows;
  };
  std::vector<Sample> samples;  // indexed by bucket; selectivity<0 = empty
};

}  // namespace optimizer_internal

/// Private implementation of Optimizer.
class Optimizer::Impl {
 public:
  using Planned = optimizer_internal::Planned;
  using PlanContext = optimizer_internal::PlanContext;
  using JoinGraph = optimizer_internal::JoinGraph;
  using InputInfo = optimizer_internal::InputInfo;
  using PartialPlan = optimizer_internal::PartialPlan;
  using JoinStep = optimizer_internal::JoinStep;
  using JoinStepPtr = optimizer_internal::JoinStepPtr;
  using StepMethod = optimizer_internal::StepMethod;
  using ParametricCache = optimizer_internal::ParametricCache;

  Impl(const Catalog* catalog, OptimizerOptions* options,
       OptimizerStats* stats)
      : catalog_(catalog), options_(options), stats_(stats) {}

  // ----- implemented in optimizer_node.cc -----

  /// Recursively plans any logical node.
  StatusOr<Planned> PlanNode(const LogicalPtr& node, PlanContext* ctx);

  StatusOr<Planned> PlanRelScan(const LogicalPtr& node, PlanContext* ctx);
  StatusOr<Planned> PlanFilter(const LogicalPtr& node, PlanContext* ctx);
  StatusOr<Planned> PlanProject(const LogicalPtr& node, PlanContext* ctx);
  StatusOr<Planned> PlanAggregate(const LogicalPtr& node, PlanContext* ctx);
  StatusOr<Planned> PlanDistinct(const LogicalPtr& node, PlanContext* ctx);
  StatusOr<Planned> PlanSort(const LogicalPtr& node, PlanContext* ctx);
  StatusOr<Planned> PlanFilterSetRef(const LogicalPtr& node, PlanContext* ctx);
  StatusOr<Planned> PlanFilterSetProbe(const LogicalPtr& node,
                                       PlanContext* ctx);

  /// Selectivity of one predicate conjunct against a stream with the given
  /// per-column distinct estimates and (optionally) base-table stats.
  double ConjunctSelectivity(const ExprPtr& conjunct,
                             const std::vector<double>& distinct,
                             const TableStats* stats, double rows) const;

  /// Fresh binding id for a magic filter set.
  std::string NextBindingId(const std::string& hint);

  // ----- implemented in optimizer_join.cc -----

  /// Plans a join block (NaryJoin node) via the System-R DP.
  StatusOr<Planned> PlanJoinBlock(const LogicalPtr& node, PlanContext* ctx);

  /// Analyzes the block: inputs, conjunct classification, access paths.
  StatusOr<JoinGraph> BuildJoinGraph(const NaryJoinNode& join,
                                     PlanContext* ctx);

  /// Costs joining `outer` with input `inner_id` using `method`. Returns
  /// false (no value) via Status when the method is inapplicable.
  StatusOr<PartialPlan> CostJoinStep(const JoinGraph& graph,
                                     const PartialPlan& outer, int inner_id,
                                     StepMethod method, PlanContext* ctx);

  /// Seeds a single-input partial plan.
  StatusOr<PartialPlan> AccessPlan(const JoinGraph& graph, int input_id);

  /// Column sets of the ordered indexes available on a local-table input.
  static std::vector<std::vector<int>> OrderedIndexColumnSets(
      const InputInfo& input);

  /// Alternative seed scanning via the ordered index on `index_cols`;
  /// costs slightly more than a sequential scan but provides the order.
  StatusOr<PartialPlan> OrderedAccessPlan(const JoinGraph& graph,
                                          int input_id,
                                          const std::vector<int>& index_cols);

  /// Builds executable operators for a join-step tree.
  StatusOr<OpPtr> BuildStep(const JoinGraph& graph, const JoinStep& step,
                            PlanContext* ctx);

  /// Exhaustive left-deep enumeration for diagnostics (E2).
  StatusOr<std::vector<JoinOrderCost>> EnumerateOrders(const NaryJoinNode& join,
                                                       PlanContext* ctx);

  /// DP driver shared by PlanJoinBlock and the Starburst-style baseline.
  StatusOr<PartialPlan> RunDP(const JoinGraph& graph, PlanContext* ctx,
                              bool allow_filter_join);

  /// Starburst baseline: force Filter Joins onto every eligible virtual
  /// inner of `chain`'s join order, keeping the order fixed.
  StatusOr<PartialPlan> RecostWithForcedFilterJoins(const JoinGraph& graph,
                                                    const PartialPlan& chain,
                                                    PlanContext* ctx);

  const Catalog* catalog_;
  OptimizerOptions* options_;
  OptimizerStats* stats_;
  int64_t next_binding_ = 0;

  /// Observed-cardinality overrides for join-block inputs (nullable; not
  /// owned). See Optimizer::set_cardinality_overlay.
  const CardinalityOverlay* overlay_ = nullptr;

  /// Unrestricted view access plans, keyed by relation name (avoids
  /// repeated nested optimization of the same view).
  std::map<std::string, Planned> view_cache_;

  /// Parametric restricted-inner caches, keyed by binding id.
  std::map<std::string, ParametricCache> parametric_;

  /// Table-1 breakdowns of Filter Joins in plans actually chosen (cleared
  /// per Optimize call; suppressed during parametric trial planning).
  std::vector<FilterJoinCostBreakdown> chosen_filter_joins_;
  bool collect_breakdowns_ = true;

  /// Nesting depth of Filter Join costing (parametric trial planning may
  /// recurse into further join blocks); bounded as a safety backstop.
  int filter_join_depth_ = 0;
};

}  // namespace magicdb

#endif  // MAGICDB_OPTIMIZER_OPTIMIZER_IMPL_H_
