#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "src/common/logging.h"
#include "src/exec/basic_ops.h"
#include "src/exec/exchange_op.h"
#include "src/exec/filter_join_op.h"
#include "src/exec/function_ops.h"
#include "src/exec/join_ops.h"
#include "src/exec/scan_ops.h"
#include "src/optimizer/optimizer_impl.h"
#include "src/rewrite/magic_rewrite.h"

namespace magicdb {

using optimizer_internal::AccessKind;
using optimizer_internal::BuildFn;
using optimizer_internal::Conjunct;
using optimizer_internal::EquiEdge;
using optimizer_internal::InputInfo;
using optimizer_internal::JoinGraph;
using optimizer_internal::JoinStep;
using optimizer_internal::JoinStepPtr;
using optimizer_internal::ParametricCache;
using optimizer_internal::PartialPlan;
using optimizer_internal::Planned;
using optimizer_internal::StepMethod;
using optimizer_internal::StepMethodName;

namespace {

constexpr double kInapplicable = -1.0;

double ProductCappedAt(const std::vector<double>& distinct,
                       const std::vector<int>& cols, double cap) {
  double d = 1.0;
  for (int c : cols) {
    d *= std::max(1.0, distinct[c]);
    if (d > cap) break;
  }
  return std::max(1.0, std::min(d, std::max(1.0, cap)));
}

/// Bloom filter false-positive rate for the configured bits/key.
double BloomFpr(double bits_per_key) {
  const double k = std::max(1.0, std::floor(bits_per_key * 0.69));
  return std::pow(1.0 - std::exp(-k / bits_per_key), k);
}

}  // namespace

// ----- Join graph construction -----

StatusOr<JoinGraph> Optimizer::Impl::BuildJoinGraph(const NaryJoinNode& join,
                                                    PlanContext* ctx) {
  JoinGraph graph;
  graph.block_schema = join.schema();
  graph.num_block_cols = graph.block_schema.num_columns();

  const int n = static_cast<int>(join.children().size());
  if (n > 16) {
    return Status::InvalidArgument("join blocks are limited to 16 inputs");
  }
  int offset = 0;
  for (int i = 0; i < n; ++i) {
    InputInfo in;
    in.id = i;
    in.node = join.children()[i];
    in.schema = in.node->schema();
    in.col_offset = offset;
    offset += in.schema.num_columns();
    switch (in.node->kind()) {
      case LogicalKind::kRelScan: {
        const auto* scan = static_cast<const RelScanNode*>(in.node.get());
        in.alias = scan->alias();
        MAGICDB_ASSIGN_OR_RETURN(in.entry,
                                 catalog_->Lookup(scan->relation_name()));
        switch (in.entry->kind) {
          case CatalogEntry::Kind::kBaseTable:
            in.access = AccessKind::kLocalTable;
            break;
          case CatalogEntry::Kind::kRemoteTable:
            in.access = AccessKind::kRemoteTable;
            in.site = in.entry->site;
            break;
          case CatalogEntry::Kind::kView:
            in.access = AccessKind::kView;
            break;
          case CatalogEntry::Kind::kTableFunction:
            in.access = AccessKind::kFunction;
            break;
        }
        break;
      }
      case LogicalKind::kFilterSetRef:
        in.access = AccessKind::kFilterSetRef;
        in.alias = "filterset";
        break;
      default:
        in.access = AccessKind::kSubplan;
        in.alias = "subplan" + std::to_string(i);
        break;
    }
    graph.inputs.push_back(std::move(in));
  }

  // Classify the predicate's conjuncts.
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(join.predicate(), &conjuncts);
  auto input_of_col = [&graph](int col) {
    for (const InputInfo& in : graph.inputs) {
      if (col >= in.col_offset &&
          col < in.col_offset + in.schema.num_columns()) {
        return in.id;
      }
    }
    return -1;
  };
  for (const ExprPtr& c : conjuncts) {
    std::vector<int> refs;
    c->CollectColumnRefs(&refs);
    uint32_t mask = 0;
    for (int col : refs) {
      const int in = input_of_col(col);
      if (in < 0) {
        return Status::Internal("predicate references unknown column");
      }
      mask |= 1u << in;
    }
    if (mask != 0 && (mask & (mask - 1)) == 0) {
      // Single input: local predicate, remapped into input space.
      InputInfo& in = graph.inputs[static_cast<int>(std::log2(mask))];
      std::vector<int> mapping(graph.num_block_cols, -1);
      for (int col = in.col_offset;
           col < in.col_offset + in.schema.num_columns(); ++col) {
        mapping[col] = col - in.col_offset;
      }
      in.local_preds.push_back(c->RemapColumns(mapping));
      continue;
    }
    Conjunct conj;
    conj.expr = c;
    conj.mask = mask;
    if (c->kind() == ExprKind::kComparison) {
      const auto* cmp = static_cast<const ComparisonExpr*>(c.get());
      if (cmp->op() == CompareOp::kEq &&
          cmp->left()->kind() == ExprKind::kColumnRef &&
          cmp->right()->kind() == ExprKind::kColumnRef) {
        const int lcol =
            static_cast<const ColumnRefExpr*>(cmp->left().get())->index();
        const int rcol =
            static_cast<const ColumnRefExpr*>(cmp->right().get())->index();
        const int lin = input_of_col(lcol);
        const int rin = input_of_col(rcol);
        if (lin != rin) {
          conj.is_equi = true;
          conj.equi_edge = static_cast<int>(graph.edges.size());
          graph.edges.push_back(EquiEdge{
              static_cast<int>(graph.conjuncts.size()), lin, rin, lcol, rcol});
        }
      }
    }
    graph.conjuncts.push_back(std::move(conj));
  }

  // Transitive closure of the equi edges: union-find over block columns,
  // then implied edges between same-class columns of different inputs that
  // lack a direct edge. Without these, the Figure-3 orders that join
  // transitively-equal relations first degenerate into cross products.
  graph.col_class.resize(graph.num_block_cols);
  for (int c = 0; c < graph.num_block_cols; ++c) graph.col_class[c] = c;
  std::function<int(int)> find = [&](int c) {
    while (graph.col_class[c] != c) {
      graph.col_class[c] = graph.col_class[graph.col_class[c]];
      c = graph.col_class[c];
    }
    return c;
  };
  for (const EquiEdge& e : graph.edges) {
    graph.col_class[find(e.left_col)] = find(e.right_col);
  }
  const size_t direct_edges = graph.edges.size();
  for (int a = 0; a < graph.num_block_cols; ++a) {
    for (int b = a + 1; b < graph.num_block_cols; ++b) {
      if (find(a) != find(b)) continue;
      const int ia = input_of_col(a);
      const int ib = input_of_col(b);
      if (ia == ib) continue;
      bool direct = false;
      for (size_t k = 0; k < direct_edges; ++k) {
        const EquiEdge& e = graph.edges[k];
        if ((e.left_col == a && e.right_col == b) ||
            (e.left_col == b && e.right_col == a)) {
          direct = true;
          break;
        }
      }
      if (direct) continue;
      Conjunct implied;
      implied.expr = MakeComparison(
          CompareOp::kEq,
          MakeColumnRef(a, graph.block_schema.column(a).type,
                        graph.block_schema.column(a).QualifiedName()),
          MakeColumnRef(b, graph.block_schema.column(b).type,
                        graph.block_schema.column(b).QualifiedName()));
      implied.mask = (1u << ia) | (1u << ib);
      implied.is_equi = true;
      implied.equi_edge = static_cast<int>(graph.edges.size());
      graph.edges.push_back(EquiEdge{
          static_cast<int>(graph.conjuncts.size()), ia, ib, a, b});
      graph.conjuncts.push_back(std::move(implied));
    }
  }
  for (int c = 0; c < graph.num_block_cols; ++c) {
    graph.col_class[c] = find(c);
  }

  // Access paths for every input.
  for (InputInfo& in : graph.inputs) {
    const int ncols = in.schema.num_columns();
    switch (in.access) {
      case AccessKind::kLocalTable:
      case AccessKind::kRemoteTable: {
        const Table* table = in.entry->table;
        const TableStats* stats =
            in.entry->stats_valid ? &in.entry->stats : nullptr;
        in.base_rows = stats != nullptr
                           ? static_cast<double>(stats->num_rows)
                           : static_cast<double>(table->NumRows());
        in.base_distinct.resize(ncols);
        for (int c = 0; c < ncols; ++c) {
          in.base_distinct[c] =
              stats != nullptr
                  ? static_cast<double>(stats->columns[c].num_distinct)
                  : in.base_rows;
        }
        double sel = 1.0;
        for (const ExprPtr& p : in.local_preds) {
          sel *= ConjunctSelectivity(p, in.base_distinct, stats, in.base_rows);
        }
        // An observed cardinality for this exact (table, local predicates)
        // stream overrides the stats estimate; the derived selectivity and
        // the distinct counts below follow the corrected row count.
        if (overlay_ != nullptr) {
          const double* observed =
              overlay_->Find(optimizer_internal::InputFeedbackKey(in));
          if (observed != nullptr && in.base_rows > 0.0) {
            sel = *observed / in.base_rows;
          }
        }
        in.local_selectivity = sel;
        in.planned.schema = in.schema;
        in.planned.est.rows = in.base_rows * sel;
        in.planned.est.width_bytes = in.schema.TupleWidthBytes();
        in.planned.est.cost =
            costs::SeqScan(in.base_rows, in.planned.est.width_bytes,
                           options_->degree_of_parallelism);
        if (!in.local_preds.empty()) {
          in.planned.est.cost += costs::ExprEval(in.base_rows);
        }
        in.planned.distinct.resize(ncols);
        for (int c = 0; c < ncols; ++c) {
          in.planned.distinct[c] =
              sel >= 1.0 ? in.base_distinct[c]
                         : std::max(1.0, YaoEstimate(
                               static_cast<int64_t>(in.base_rows),
                               static_cast<int64_t>(
                                   std::max(1.0, in.base_distinct[c])),
                               static_cast<int64_t>(
                                   std::max(1.0, in.planned.est.rows))));
        }
        if (in.access == AccessKind::kRemoteTable) {
          in.planned.est.cost +=
              costs::Ship(in.planned.est.rows, in.planned.est.width_bytes);
        }
        const std::string alias = in.alias;
        const int site = in.site;
        ExprPtr local = ConjoinAll(in.local_preds);
        const bool remote = in.access == AccessKind::kRemoteTable;
        in.planned.build = [table, alias, local, remote,
                            site]() -> StatusOr<OpPtr> {
          OpPtr op = std::make_unique<SeqScanOp>(table, alias);
          if (local) {
            op = std::make_unique<FilterOp>(std::move(op), local);
          }
          if (remote) {
            op = std::make_unique<ShipOp>(std::move(op), site, kLocalSite);
          }
          return op;
        };
        break;
      }
      case AccessKind::kView:
      case AccessKind::kSubplan:
      case AccessKind::kFilterSetRef: {
        Planned base;
        if (in.access == AccessKind::kView) {
          auto it = view_cache_.find(in.entry->name);
          if (it != view_cache_.end()) {
            base = it->second;
          } else {
            stats_->nested_optimizations += 1;
            MAGICDB_ASSIGN_OR_RETURN(base,
                                     PlanNode(in.entry->view_plan, ctx));
            view_cache_[in.entry->name] = base;
          }
        } else {
          MAGICDB_ASSIGN_OR_RETURN(base, PlanNode(in.node, ctx));
        }
        in.base_rows = base.est.rows;
        in.base_distinct = base.distinct;
        double sel = 1.0;
        for (const ExprPtr& p : in.local_preds) {
          sel *=
              ConjunctSelectivity(p, base.distinct, nullptr, base.est.rows);
        }
        in.planned = base;
        in.planned.schema = in.schema;
        // As for tables: an observed row count for this (view, predicates)
        // stream overrides the nested estimate — including when there are no
        // local predicates at all, where the plain nested plan is kept but
        // its cardinality is corrected.
        bool override_rows = false;
        if (overlay_ != nullptr) {
          const double* observed =
              overlay_->Find(optimizer_internal::InputFeedbackKey(in));
          if (observed != nullptr && base.est.rows > 0.0) {
            sel = *observed / base.est.rows;
            override_rows = true;
          }
        }
        in.local_selectivity = sel;
        if (!in.local_preds.empty() || override_rows) {
          if (!in.local_preds.empty()) {
            in.planned.est.cost += costs::ExprEval(base.est.rows);
          }
          in.planned.est.rows = base.est.rows * sel;
          in.planned.distinct.resize(ncols);
          for (int c = 0; c < ncols; ++c) {
            in.planned.distinct[c] =
                sel >= 1.0
                    ? std::max(1.0, base.distinct[c])
                    : std::max(
                          1.0, YaoEstimate(static_cast<int64_t>(base.est.rows),
                                           static_cast<int64_t>(std::max(
                                               1.0, base.distinct[c])),
                                           static_cast<int64_t>(std::max(
                                               1.0, in.planned.est.rows))));
          }
          if (!in.local_preds.empty()) {
            ExprPtr local = ConjoinAll(in.local_preds);
            BuildFn base_build = base.build;
            in.planned.build = [base_build, local]() -> StatusOr<OpPtr> {
              MAGICDB_ASSIGN_OR_RETURN(OpPtr op, base_build());
              return OpPtr(std::make_unique<FilterOp>(std::move(op), local));
            };
          }
        }
        break;
      }
      case AccessKind::kFunction: {
        // Functions have no standalone access path; they join as inners.
        in.base_rows = in.entry->function->ExpectedRowsPerInvocation();
        in.planned.schema = in.schema;
        in.planned.est.rows = in.base_rows;
        in.planned.est.width_bytes = in.schema.TupleWidthBytes();
        in.planned.distinct.assign(ncols, 1.0);
        break;
      }
    }
  }
  return graph;
}

// ----- DP seeds -----

StatusOr<PartialPlan> Optimizer::Impl::AccessPlan(const JoinGraph& graph,
                                                  int input_id) {
  const InputInfo& in = graph.inputs[input_id];
  if (in.access == AccessKind::kFunction) {
    return Status::InvalidArgument(
        "table function cannot be accessed standalone");
  }
  PartialPlan p;
  p.set = 1u << input_id;
  p.cost = in.planned.est.cost;
  p.rows = in.planned.est.rows;
  p.width = in.planned.est.width_bytes;
  p.distinct.assign(graph.num_block_cols, 0.0);
  for (int c = 0; c < in.schema.num_columns(); ++c) {
    p.distinct[in.col_offset + c] = in.planned.distinct[c];
  }
  auto step = std::make_shared<JoinStep>();
  step->method = StepMethod::kAccess;
  step->input = input_id;
  step->cost = p.cost;
  step->rows = p.rows;
  step->output_block_cols.resize(in.schema.num_columns());
  for (int c = 0; c < in.schema.num_columns(); ++c) {
    step->output_block_cols[c] = in.col_offset + c;
  }
  p.step = step;
  stats_->dp_entries += 1;
  return p;
}

std::vector<std::vector<int>> Optimizer::Impl::OrderedIndexColumnSets(
    const InputInfo& input) {
  std::vector<std::vector<int>> sets;
  if (input.entry == nullptr || input.entry->table == nullptr) return sets;
  // Probe the common single- and two-column prefixes; the Table API only
  // exposes exact-column lookup, so enumerate candidate sets.
  const int ncols = input.schema.num_columns();
  for (int c = 0; c < ncols; ++c) {
    if (input.entry->table->FindOrderedIndex({c}) != nullptr) {
      sets.push_back({c});
    }
    for (int d = 0; d < ncols; ++d) {
      if (d == c) continue;
      if (input.entry->table->FindOrderedIndex({c, d}) != nullptr) {
        sets.push_back({c, d});
      }
    }
  }
  return sets;
}

StatusOr<PartialPlan> Optimizer::Impl::OrderedAccessPlan(
    const JoinGraph& graph, int input_id, const std::vector<int>& index_cols) {
  MAGICDB_ASSIGN_OR_RETURN(PartialPlan p, AccessPlan(graph, input_id));
  const InputInfo& in = graph.inputs[input_id];
  const OrderedIndex* index = in.entry->table->FindOrderedIndex(index_cols);
  if (index == nullptr) {
    return Status::NotFound("no ordered index on the requested columns");
  }
  // Traversal surcharge over the sequential scan.
  p.cost += static_cast<double>(index->ModelledHeight());
  p.order_cols.clear();
  for (int c : index_cols) p.order_cols.push_back(in.col_offset + c);
  auto step = std::make_shared<JoinStep>(*p.step);
  step->ordered_scan_cols = index_cols;
  step->cost = p.cost;
  p.step = step;
  return p;
}

// ----- Join step costing -----

StatusOr<PartialPlan> Optimizer::Impl::CostJoinStep(const JoinGraph& graph,
                                                    const PartialPlan& outer,
                                                    int inner_id,
                                                    StepMethod method,
                                                    PlanContext* ctx) {
  const InputInfo& inner = graph.inputs[inner_id];
  const uint32_t inner_bit = 1u << inner_id;
  MAGICDB_CHECK((outer.set & inner_bit) == 0);
  const uint32_t new_set = outer.set | inner_bit;
  stats_->join_steps_costed += 1;

  // Conjuncts applied at this step: those referencing the inner whose full
  // mask is now covered.
  std::vector<std::pair<int, int>> keys;      // (outer block col, inner col)
  std::vector<ExprPtr> residuals;             // block space
  std::vector<ExprPtr> all_applied;           // for NL predicates
  double equi_sel = 1.0;
  double resid_sel = 1.0;

  // Combined distinct (outer cols + inner cols) for residual selectivity.
  std::vector<double> combined = outer.distinct;
  for (int c = 0; c < inner.schema.num_columns(); ++c) {
    combined[inner.col_offset + c] = inner.planned.distinct[c];
  }

  std::vector<int> counted_classes;  // selectivity counted per column class
  for (const Conjunct& conj : graph.conjuncts) {
    if ((conj.mask & inner_bit) == 0) continue;
    if ((conj.mask & ~new_set) != 0) continue;
    all_applied.push_back(conj.expr);
    if (conj.is_equi) {
      const EquiEdge& e = graph.edges[conj.equi_edge];
      int ocol, icol;
      if (e.left_input == inner_id) {
        ocol = e.right_col;
        icol = e.left_col - inner.col_offset;
      } else {
        ocol = e.left_col;
        icol = e.right_col - inner.col_offset;
      }
      // Keys are deduplicated per inner column; transitively-equal edges
      // (same equivalence class) contribute selectivity only once.
      bool dup_key = false;
      for (const auto& [eo, ei] : keys) {
        if (ei == icol) {
          dup_key = true;
          break;
        }
      }
      if (!dup_key) keys.emplace_back(ocol, icol);
      const int cls = graph.col_class[inner.col_offset + icol];
      bool counted = false;
      for (int c : counted_classes) {
        if (c == cls) {
          counted = true;
          break;
        }
      }
      if (!counted) {
        counted_classes.push_back(cls);
        equi_sel *= 1.0 / std::max({1.0, outer.distinct[ocol],
                                    inner.planned.distinct[icol]});
      }
      continue;
    }
    residuals.push_back(conj.expr);
    resid_sel *= ConjunctSelectivity(
        conj.expr, combined, nullptr,
        outer.rows * std::max(1.0, inner.planned.est.rows));
  }
  std::sort(keys.begin(), keys.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  const double inner_rows = inner.planned.est.rows;
  const double mid_rows = outer.rows * inner_rows * equi_sel;
  double out_rows = mid_rows * resid_sel;

  auto step = std::make_shared<JoinStep>();
  step->method = method;
  step->input = inner_id;
  step->outer = outer.step;
  step->keys = keys;
  step->residuals = residuals;
  step->output_block_cols = outer.step->output_block_cols;
  for (int c = 0; c < inner.schema.num_columns(); ++c) {
    step->output_block_cols.push_back(inner.col_offset + c);
  }

  double step_cost = kInapplicable;
  std::vector<int> order = outer.order_cols;

  const bool is_function = inner.access == AccessKind::kFunction;
  const bool is_table = inner.access == AccessKind::kLocalTable ||
                        inner.access == AccessKind::kRemoteTable;

  switch (method) {
    case StepMethod::kAccess:
      return Status::InvalidArgument("kAccess is not a join method");

    case StepMethod::kNestedLoops: {
      if (!options_->enable_nested_loops || is_function) break;
      const double pairs = outer.rows * inner_rows;
      step_cost = outer.rows * inner.planned.est.cost +
                  costs::TupleCpu(pairs) +
                  (all_applied.empty() ? 0.0 : costs::ExprEval(pairs));
      // NL applies every conjunct (keys included) as its predicate.
      step->keys.clear();
      step->residuals = all_applied;
      break;
    }

    case StepMethod::kHash: {
      if (!options_->enable_hash_join || is_function || keys.empty()) break;
      step_cost = inner.planned.est.cost +
                  costs::HashBuild(inner_rows,
                                   options_->degree_of_parallelism) +
                  costs::HashProbe(outer.rows, mid_rows,
                                   options_->degree_of_parallelism) +
                  costs::HashSpill(inner_rows, inner.planned.est.width_bytes,
                                   outer.rows, outer.width,
                                   options_->memory_budget_bytes) +
                  (residuals.empty() ? 0.0 : costs::ExprEval(mid_rows));
      break;
    }

    case StepMethod::kSortMerge: {
      if (!options_->enable_sort_merge || is_function || keys.empty()) break;
      // Interesting orders: when the outer already arrives sorted on the
      // key columns (its order's leading columns are a permutation of the
      // keys), skip sorting the outer and merge directly.
      bool outer_presorted = false;
      if (options_->interesting_orders &&
          outer.order_cols.size() >= keys.size()) {
        std::vector<std::pair<int, int>> reordered;
        for (size_t i = 0; i < keys.size(); ++i) {
          const int want = outer.order_cols[i];
          for (const auto& kv : keys) {
            if (kv.first == want) {
              reordered.push_back(kv);
              break;
            }
          }
        }
        if (reordered.size() == keys.size()) {
          outer_presorted = true;
          keys = reordered;
          step->keys = keys;
        }
      }
      step_cost = inner.planned.est.cost +
                  (outer_presorted
                       ? 0.0
                       : costs::Sort(outer.rows, outer.width,
                                     options_->memory_budget_bytes)) +
                  costs::Sort(inner_rows, inner.planned.est.width_bytes,
                              options_->memory_budget_bytes) +
                  costs::TupleCpu(mid_rows) +
                  (residuals.empty() ? 0.0 : costs::ExprEval(mid_rows));
      order.clear();
      for (const auto& [ocol, icol] : keys) order.push_back(ocol);
      step->smj_outer_presorted = outer_presorted;
      break;
    }

    case StepMethod::kIndexNL: {
      if (!options_->enable_index_nested_loops || !is_table || keys.empty()) {
        break;
      }
      std::vector<int> index_cols;
      for (const auto& [ocol, icol] : keys) index_cols.push_back(icol);
      const HashIndex* index = inner.entry->table->FindHashIndex(index_cols);
      if (index == nullptr) break;
      // Probes hit the raw table; local predicates become residuals.
      double base_equi_sel = 1.0;
      for (const auto& [ocol, icol] : keys) {
        base_equi_sel *= 1.0 / std::max({1.0, outer.distinct[ocol],
                                         inner.base_distinct[icol]});
      }
      const double base_matches = outer.rows * inner.base_rows * base_equi_sel;
      const double matches_per_probe =
          outer.rows > 0 ? base_matches / outer.rows : 0.0;
      step_cost = outer.rows * costs::IndexProbe(matches_per_probe);
      if (!inner.local_preds.empty() || !residuals.empty()) {
        step_cost += costs::ExprEval(base_matches);
      }
      if (inner.access == AccessKind::kRemoteTable) {
        const double key_bytes = 8.0 * static_cast<double>(keys.size());
        step_cost += outer.rows *
                     costs::RemoteProbe(key_bytes, matches_per_probe,
                                        inner.planned.est.width_bytes);
      }
      out_rows = base_matches * inner.local_selectivity * resid_sel;
      break;
    }

    case StepMethod::kFnProbe:
    case StepMethod::kFnMemo: {
      if (!is_function) break;
      // Every argument column must be bound by an equi key.
      const int nargs = inner.entry->function->arg_schema().num_columns();
      std::vector<std::pair<int, int>> arg_keys;
      std::vector<ExprPtr> fn_residuals = residuals;
      for (const auto& [ocol, icol] : keys) {
        if (icol < nargs) {
          arg_keys.emplace_back(ocol, icol);
        } else {
          // Equality against a function result column: apply after the
          // call.
          fn_residuals.push_back(MakeComparison(
              CompareOp::kEq,
              MakeColumnRef(ocol, graph.block_schema.column(ocol).type,
                            graph.block_schema.column(ocol).QualifiedName()),
              MakeColumnRef(inner.col_offset + icol,
                            graph.block_schema.column(inner.col_offset + icol)
                                .type,
                            graph.block_schema.column(inner.col_offset + icol)
                                .QualifiedName())));
        }
      }
      if (static_cast<int>(arg_keys.size()) != nargs) break;  // unbound args
      const double rpi =
          inner.entry->function->ExpectedRowsPerInvocation();
      const double raw_out = outer.rows * rpi;
      if (method == StepMethod::kFnProbe) {
        step_cost = costs::FunctionInvoke(outer.rows) + costs::TupleCpu(raw_out);
      } else {
        std::vector<int> arg_cols;
        for (const auto& [ocol, icol] : arg_keys) arg_cols.push_back(ocol);
        const double d_args =
            ProductCappedAt(outer.distinct, arg_cols, outer.rows);
        const double distinct_args = ExpectedDistinct(d_args, outer.rows);
        step_cost = costs::FunctionInvoke(distinct_args) +
                    costs::HashProbe(outer.rows, 0.0) +
                    costs::TupleCpu(raw_out);
      }
      if (!fn_residuals.empty()) step_cost += costs::ExprEval(raw_out);
      out_rows = raw_out * resid_sel;
      step->keys = arg_keys;
      step->residuals = fn_residuals;
      break;
    }

    case StepMethod::kFilterJoin: {
      if (keys.empty()) break;
      bool eligible =
          inner.access == AccessKind::kView ||
          inner.access == AccessKind::kSubplan ||
          inner.access == AccessKind::kRemoteTable ||
          inner.access == AccessKind::kFunction ||
          (inner.access == AccessKind::kLocalTable &&
           options_->filter_join_on_stored);
      // Never rewrite an already magic-rewritten fragment (the rewrite
      // would never terminate), and bound nesting depth as a backstop.
      if (inner.access == AccessKind::kSubplan &&
          PlanContainsFilterSet(*inner.node)) {
        eligible = false;
      }
      if (inner.access == AccessKind::kView &&
          PlanContainsFilterSet(*inner.entry->view_plan)) {
        eligible = false;
      }
      if (filter_join_depth_ >= 8) eligible = false;
      if (!eligible) break;

      const int nargs =
          is_function ? inner.entry->function->arg_schema().num_columns() : 0;
      if (is_function) {
        // All argument columns must be filter-set keys, in arg order.
        std::vector<std::pair<int, int>> arg_keys;
        for (const auto& [ocol, icol] : keys) {
          if (icol < nargs) arg_keys.emplace_back(ocol, icol);
        }
        if (static_cast<int>(arg_keys.size()) != nargs) break;
        step->keys = arg_keys;
      }
      const std::vector<std::pair<int, int>>& fj_keys = step->keys;

      // Candidate filter-set implementations (Limitation 3).
      std::vector<FilterSetImpl> impls;
      if (options_->consider_exact_filter_sets) {
        impls.push_back(FilterSetImpl::kExact);
      }
      if (options_->consider_bloom_filter_sets && !is_function) {
        impls.push_back(FilterSetImpl::kBloom);
      }
      if (impls.empty()) break;

      double best_cost = kInapplicable;
      FilterJoinCostBreakdown best_bd;
      FilterSetImpl best_impl = FilterSetImpl::kExact;
      LogicalPtr best_rewritten;
      std::string best_binding;
      std::vector<int> best_filter_positions;

      std::vector<int> outer_key_cols;
      std::vector<int> inner_key_local;
      for (const auto& [ocol, icol] : fj_keys) {
        outer_key_cols.push_back(ocol);
        inner_key_local.push_back(icol);
      }

      // Filter-key subsets (§2.1/§3.3): the filter set normally uses every
      // join attribute; optionally each single attribute is also tried
      // (lossy-by-omission SIPS). Functions need all arguments bound.
      std::vector<std::vector<int>> key_subsets;
      {
        std::vector<int> all(fj_keys.size());
        for (size_t i = 0; i < fj_keys.size(); ++i) all[i] = static_cast<int>(i);
        key_subsets.push_back(std::move(all));
        if (options_->consider_partial_key_filter_sets && !is_function &&
            fj_keys.size() > 1) {
          for (size_t i = 0; i < fj_keys.size(); ++i) {
            key_subsets.push_back({static_cast<int>(i)});
          }
        }
      }

      // Production-set choices. Limitation 2 fixes it to the full outer;
      // the ablation additionally tries every outer-chain prefix that
      // still produces all key columns (Limitation 1), which multiplies
      // costing work by O(chain length).
      struct ProdSpec {
        double rows;
        double width;
        int prefix_len;  // -1 = full outer
      };
      std::vector<ProdSpec> prod_specs = {
          {outer.rows, static_cast<double>(outer.width), -1}};
      if (options_->explore_prefix_production_sets) {
        for (const JoinStep* s = outer.step->outer.get(); s != nullptr;
             s = s->outer.get()) {
          bool has_all_keys = true;
          for (int kc : outer_key_cols) {
            bool found = false;
            for (int c : s->output_block_cols) {
              if (c == kc) {
                found = true;
                break;
              }
            }
            if (!found) {
              has_all_keys = false;
              break;
            }
          }
          if (!has_all_keys) continue;
          double w = 0;
          for (int c : s->output_block_cols) {
            w += static_cast<double>(
                DataTypeWidth(graph.block_schema.column(c).type));
          }
          int len = 0;
          for (const JoinStep* q = s; q != nullptr; q = q->outer.get()) ++len;
          prod_specs.push_back({s->rows, w, len});
        }
      }

      for (const std::vector<int>& subset : key_subsets) {
       std::vector<int> sub_outer_cols, sub_inner_local;
       for (int pos : subset) {
         sub_outer_cols.push_back(outer_key_cols[pos]);
         sub_inner_local.push_back(inner_key_local[pos]);
       }
       int64_t key_width = 0;
       for (int icol : sub_inner_local) {
         key_width += DataTypeWidth(inner.schema.column(icol).type);
       }
       for (FilterSetImpl impl : impls) {
       for (const ProdSpec& prod : prod_specs) {
        stats_->filter_joins_costed += 1;
        FilterJoinCostBreakdown bd;
        bd.production_prefix_len = prod.prefix_len;
        bd.join_cost_p = outer.cost;
        bd.production_cost = costs::MaterializeWrite(
            prod.rows, static_cast<int64_t>(prod.width));
        bd.proj_cost = costs::HashBuild(prod.rows);
        const double d_key_outer =
            ProductCappedAt(outer.distinct, sub_outer_cols, prod.rows);
        const double n_f = ExpectedDistinct(d_key_outer, prod.rows);
        bd.filter_set_size = n_f;
        bd.filter_key_count = static_cast<int>(subset.size());
        const double fpr = impl == FilterSetImpl::kBloom
                               ? BloomFpr(options_->bloom_bits_per_key)
                               : 0.0;
        if (impl == FilterSetImpl::kBloom) {
          bd.avail_cost_f = 1.0;  // fixed-size bitmap page
          if (inner.site != kLocalSite) {
            bd.avail_cost_f +=
                CostConstants::kMessageCost +
                CostConstants::kBytePerCost *
                    (options_->bloom_bits_per_key * n_f / 8.0);
          }
        } else {
          bd.avail_cost_f = costs::MaterializeWrite(n_f, key_width);
          if (inner.site != kLocalSite) {
            bd.avail_cost_f +=
                CostConstants::kMessageCost +
                CostConstants::kBytePerCost * n_f *
                    static_cast<double>(key_width);
          }
        }

        double restricted_rows = 0.0;
        double filter_cost = 0.0;
        double avail_rk = 0.0;
        LogicalPtr rewritten;
        std::string binding;

        if (is_table) {
          double d_inner_base =
              ProductCappedAt(inner.base_distinct, sub_inner_local,
                              inner.base_rows);
          double sigma = std::min(1.0, n_f / d_inner_base);
          sigma = sigma + (1.0 - sigma) * fpr;
          const double probed = inner.base_rows * sigma;
          filter_cost =
              costs::SeqScan(inner.base_rows, inner.planned.est.width_bytes) +
              costs::HashProbe(inner.base_rows, 0.0);
          if (!inner.local_preds.empty()) {
            filter_cost += costs::ExprEval(probed);
          }
          restricted_rows = probed * inner.local_selectivity;
          if (inner.access == AccessKind::kRemoteTable) {
            avail_rk =
                costs::Ship(restricted_rows, inner.planned.est.width_bytes);
          }
        } else if (is_function) {
          filter_cost = costs::FunctionInvoke(n_f) +
                        costs::TupleCpu(n_f * inner.base_rows);
          restricted_rows = n_f * inner.base_rows;
          binding = NextBindingId(inner.alias);
        } else {
          // View or subplan: parametric costing via equivalence classes.
          // Exact filter sets use the join-style rewrite (F can drive the
          // view through an index); Bloom sets can only probe.
          const RewriteStyle style = impl == FilterSetImpl::kBloom
                                         ? RewriteStyle::kProbe
                                         : RewriteStyle::kJoin;
          std::string key_suffix;
          for (int icol : sub_inner_local) {
            key_suffix += "." + std::to_string(icol);
          }
          key_suffix += style == RewriteStyle::kJoin ? "_join" : "_probe";
          std::ostringstream key_os;
          key_os << inner.alias << "@" << static_cast<const void*>(
              inner.node.get()) << key_suffix;
          const std::string cache_key = key_os.str();
          auto cache_it = parametric_.find(cache_key);
          if (cache_it == parametric_.end()) {
            ParametricCache cache;
            cache.pinned_node = inner.node;  // keeps the cache key unique
            cache.binding_id = NextBindingId(inner.alias);
            const LogicalPtr view_plan = inner.access == AccessKind::kView
                                             ? inner.entry->view_plan
                                             : inner.node;
            MAGICDB_ASSIGN_OR_RETURN(
                cache.rewritten,
                MagicRewrite(view_plan, sub_inner_local, cache.binding_id,
                             style, catalog_));
            std::vector<double> base_d = inner.base_distinct;
            cache.inner_key_domain =
                ProductCappedAt(base_d, sub_inner_local,
                                std::max(1.0, inner.base_rows));
            cache.samples.assign(
                static_cast<size_t>(std::max(1, options_->equivalence_classes)),
                ParametricCache::Sample{-1.0, 0.0, 0.0});
            cache_it = parametric_.emplace(cache_key, std::move(cache)).first;
          }
          ParametricCache& cache = cache_it->second;
          binding = cache.binding_id;
          rewritten = cache.rewritten;

          double sigma =
              std::min(1.0, n_f / std::max(1.0, cache.inner_key_domain));
          sigma = sigma + (1.0 - sigma) * fpr;
          // Equivalence classes are log-spaced over [10^-4, 1]: join
          // selectivities vary over orders of magnitude, and a uniform
          // grid would lump every selective case into one coarse class
          // (the paper leaves the classing heuristic open, §4.2).
          constexpr double kDecades = 4.0;
          const int k = static_cast<int>(cache.samples.size());
          const double log_sigma =
              std::log10(std::clamp(sigma, 1e-4, 1.0));  // in [-4, 0]
          int bucket = std::clamp(
              static_cast<int>((log_sigma + kDecades) / kDecades * k), 0,
              k - 1);
          if (cache.samples[bucket].selectivity < 0) {
            // Miss: nested-plan the rewritten inner at the bucket's
            // (geometric) center.
            stats_->eq_class_misses += 1;
            // The top class is anchored at sigma = 1 (the unrestricted
            // inner), so a useless filter set is costed exactly.
            const double sigma_c =
                bucket == k - 1
                    ? 1.0
                    : std::pow(10.0, -kDecades + (bucket + 0.5) * kDecades / k);
            PlanContext trial = *ctx;
            trial.filter_set_rows[binding] =
                std::max(1.0, sigma_c * cache.inner_key_domain);
            trial.filter_set_fpr[binding] = 0.0;
            const bool saved = collect_breakdowns_;
            collect_breakdowns_ = false;
            ++filter_join_depth_;
            auto planned = PlanNode(cache.rewritten, &trial);
            --filter_join_depth_;
            collect_breakdowns_ = saved;
            if (!planned.ok()) return planned.status();
            cache.samples[bucket] = ParametricCache::Sample{
                sigma_c, planned->est.cost, planned->est.rows};
          } else {
            stats_->eq_class_hits += 1;
          }
          // Cardinality: straight-line fit through the computed samples
          // (Figure 4). Cost: the step function of the bucket (Figure 5).
          double sum_s = 0, sum_r = 0, sum_ss = 0, sum_sr = 0;
          int count = 0;
          for (const auto& s : cache.samples) {
            if (s.selectivity < 0) continue;
            sum_s += s.selectivity;
            sum_r += s.rows;
            sum_ss += s.selectivity * s.selectivity;
            sum_sr += s.selectivity * s.rows;
            ++count;
          }
          double rows_at_sigma;
          if (count >= 2 && sum_ss * count - sum_s * sum_s > 1e-12) {
            const double slope =
                (count * sum_sr - sum_s * sum_r) /
                (count * sum_ss - sum_s * sum_s);
            const double intercept = (sum_r - slope * sum_s) / count;
            rows_at_sigma = std::max(0.0, intercept + slope * sigma);
          } else {
            // One sample: line through the origin.
            const auto& s = cache.samples[bucket];
            rows_at_sigma = s.selectivity > 0
                                ? s.rows * (sigma / s.selectivity)
                                : s.rows;
          }
          filter_cost = cache.samples[bucket].cost;
          restricted_rows = std::min(rows_at_sigma, inner.base_rows);
          restricted_rows *= inner.local_selectivity;
          if (!inner.local_preds.empty()) {
            filter_cost += costs::ExprEval(rows_at_sigma);
          }
        }

        bd.filter_cost_rk = filter_cost;
        bd.avail_cost_rk = avail_rk;
        bd.restricted_rows = restricted_rows;
        // With a prefix production set the full outer is not spooled; the
        // final join probes the outer stream directly.
        const double spool_read =
            prod.prefix_len < 0 ? costs::SpoolRead(outer.rows, outer.width)
                                : 0.0;
        bd.final_join_cost =
            spool_read + costs::HashBuild(restricted_rows) +
            costs::HashProbe(outer.rows, mid_rows) +
            costs::HashSpill(restricted_rows,
                             inner.planned.est.width_bytes, outer.rows,
                             outer.width, options_->memory_budget_bytes) +
            (residuals.empty() ? 0.0 : costs::ExprEval(mid_rows));

        const double total = bd.StepTotal();
        if (best_cost < 0 || total < best_cost) {
          best_cost = total;
          best_bd = bd;
          best_impl = impl;
          best_rewritten = rewritten;
          best_binding = binding;
          best_filter_positions =
              subset.size() == fj_keys.size() ? std::vector<int>{} : subset;
        }
       }
       }
      }
      if (best_cost < 0) break;
      step_cost = best_cost;
      step->fs_impl = best_impl;
      step->binding_id = best_binding.empty()
                             ? NextBindingId(inner.alias)
                             : best_binding;
      step->rewritten_inner = best_rewritten;
      step->breakdown = best_bd;
      step->filter_key_positions = best_filter_positions;
      break;
    }
  }

  if (step_cost < 0) {
    return Status::InvalidArgument("method inapplicable");
  }

  PartialPlan result;
  result.set = new_set;
  result.cost = outer.cost + step_cost;
  result.rows = std::max(0.0, out_rows);
  result.width = outer.width + inner.planned.est.width_bytes;
  result.distinct = combined;
  for (double& d : result.distinct) {
    d = std::min(d, std::max(1.0, result.rows));
  }
  result.order_cols = options_->interesting_orders ? order
                                                   : std::vector<int>{};
  step->cost = result.cost;
  step->rows = result.rows;
  result.step = step;
  return result;
}

}  // namespace magicdb
