#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/exec/basic_ops.h"
#include "src/exec/exchange_op.h"
#include "src/exec/filter_join_op.h"
#include "src/exec/function_ops.h"
#include "src/exec/join_ops.h"
#include "src/exec/scan_ops.h"
#include "src/optimizer/join_order_backend.h"
#include "src/optimizer/optimizer_impl.h"

namespace magicdb {

using optimizer_internal::AccessKind;
using optimizer_internal::BuildFn;
using optimizer_internal::InputInfo;
using optimizer_internal::JoinGraph;
using optimizer_internal::JoinStep;
using optimizer_internal::JoinStepPtr;
using optimizer_internal::PartialPlan;
using optimizer_internal::Planned;
using optimizer_internal::StepMethod;
using optimizer_internal::StepMethodName;

namespace optimizer_internal {

std::string InputFeedbackKey(const InputInfo& in) {
  switch (in.access) {
    case AccessKind::kLocalTable:
    case AccessKind::kRemoteTable:
      return FeedbackScanKey("scan", in.entry->name, in.local_preds);
    case AccessKind::kView:
      return FeedbackScanKey("view", in.entry->name, in.local_preds);
    case AccessKind::kSubplan:
      return FeedbackScanKey("sub", in.alias, in.local_preds);
    case AccessKind::kFunction:
    case AccessKind::kFilterSetRef:
      break;
  }
  return "";
}

}  // namespace optimizer_internal

namespace {

const StepMethod kJoinMethods[] = {
    StepMethod::kNestedLoops, StepMethod::kHash,    StepMethod::kSortMerge,
    StepMethod::kIndexNL,     StepMethod::kFnProbe, StepMethod::kFnMemo,
    StepMethod::kFilterJoin,
};

bool IsPrefixOf(const std::vector<int>& prefix, const std::vector<int>& of) {
  if (prefix.size() > of.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (prefix[i] != of[i]) return false;
  }
  return true;
}

void InsertCandidate(std::vector<PartialPlan>* cands, PartialPlan cand) {
  for (const PartialPlan& c : *cands) {
    if (c.cost <= cand.cost && IsPrefixOf(cand.order_cols, c.order_cols)) {
      return;
    }
  }
  cands->erase(std::remove_if(cands->begin(), cands->end(),
                              [&](const PartialPlan& c) {
                                return cand.cost <= c.cost &&
                                       IsPrefixOf(c.order_cols,
                                                  cand.order_cols);
                              }),
               cands->end());
  cands->push_back(std::move(cand));
}

int LayoutPos(const std::vector<int>& layout, int block_col) {
  for (size_t i = 0; i < layout.size(); ++i) {
    if (layout[i] == block_col) return static_cast<int>(i);
  }
  return -1;
}

ExprPtr RemapBlockExpr(const ExprPtr& expr, const std::vector<int>& layout,
                       int num_block_cols) {
  std::vector<int> mapping(num_block_cols, -1);
  for (size_t pos = 0; pos < layout.size(); ++pos) {
    mapping[layout[pos]] = static_cast<int>(pos);
  }
  return expr->RemapColumns(mapping);
}

double BloomFprFor(double bits_per_key) {
  const double k = std::max(1.0, std::floor(bits_per_key * 0.69));
  return std::pow(1.0 - std::exp(-k / bits_per_key), k);
}

/// Chain of (input, method) pairs outermost-first for a left-deep tree.
std::vector<std::pair<int, StepMethod>> ExtractChain(const JoinStep& root) {
  std::vector<std::pair<int, StepMethod>> chain;
  const JoinStep* s = &root;
  while (s != nullptr) {
    chain.emplace_back(s->input, s->method);
    s = s->outer.get();
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace

// ----- DP driver -----

StatusOr<PartialPlan> Optimizer::Impl::RunDP(const JoinGraph& graph,
                                             PlanContext* ctx,
                                             bool allow_filter_join) {
  const int n = static_cast<int>(graph.inputs.size());
  if (n == 1) return AccessPlan(graph, 0);

  const uint32_t full = (1u << n) - 1;
  std::vector<std::vector<PartialPlan>> table(1u << n);
  for (int i = 0; i < n; ++i) {
    const InputInfo& in = graph.inputs[i];
    if (in.access == AccessKind::kFunction) continue;
    auto seed = AccessPlan(graph, i);
    if (seed.ok()) table[1u << i].push_back(std::move(*seed));
    // Ordered-index scans: alternative seeds that provide an interesting
    // order at a small traversal surcharge.
    if (options_->interesting_orders &&
        in.access == AccessKind::kLocalTable) {
      for (const auto& seed_cols : OrderedIndexColumnSets(in)) {
        auto ordered = OrderedAccessPlan(graph, i, seed_cols);
        if (ordered.ok()) {
          InsertCandidate(&table[1u << i], std::move(*ordered));
        }
      }
    }
  }

  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (table[mask].empty()) continue;
    for (const PartialPlan& cand : table[mask]) {
      for (int j = 0; j < n; ++j) {
        if ((mask & (1u << j)) != 0) continue;
        for (StepMethod method : kJoinMethods) {
          if (method == StepMethod::kFilterJoin && !allow_filter_join) {
            continue;
          }
          if (method == StepMethod::kFnMemo &&
              !options_->enable_function_memo) {
            continue;
          }
          auto r = CostJoinStep(graph, cand, j, method, ctx);
          if (!r.ok()) continue;  // method inapplicable here
          stats_->dp_entries += 1;
          InsertCandidate(&table[mask | (1u << j)], std::move(*r));
        }
      }
    }
  }

  if (table[full].empty()) {
    return Status::InvalidArgument(
        "no feasible join plan (is a table function missing argument "
        "bindings?)");
  }
  const PartialPlan* best = &table[full][0];
  for (const PartialPlan& p : table[full]) {
    if (p.cost < best->cost) best = &p;
  }
  return *best;
}

StatusOr<PartialPlan> Optimizer::Impl::RecostWithForcedFilterJoins(
    const JoinGraph& graph, const PartialPlan& chain_plan, PlanContext* ctx) {
  const std::vector<std::pair<int, StepMethod>> chain =
      ExtractChain(*chain_plan.step);
  MAGICDB_ASSIGN_OR_RETURN(PartialPlan cur,
                           AccessPlan(graph, chain[0].first));
  for (size_t i = 1; i < chain.size(); ++i) {
    const auto& [input, method] = chain[i];
    const InputInfo& in = graph.inputs[input];
    const bool virtual_inner = in.access == AccessKind::kView ||
                               in.access == AccessKind::kSubplan ||
                               in.access == AccessKind::kRemoteTable ||
                               in.access == AccessKind::kFunction;
    bool done = false;
    if (virtual_inner) {
      auto fj = CostJoinStep(graph, cur, input, StepMethod::kFilterJoin, ctx);
      if (fj.ok()) {
        cur = std::move(*fj);
        done = true;
      }
    }
    if (!done) {
      MAGICDB_ASSIGN_OR_RETURN(cur,
                               CostJoinStep(graph, cur, input, method, ctx));
    }
  }
  return cur;
}

// ----- Join block planning -----

StatusOr<Planned> Optimizer::Impl::PlanJoinBlock(const LogicalPtr& node,
                                                 PlanContext* ctx) {
  const auto* join = static_cast<const NaryJoinNode*>(node.get());
  MAGICDB_ASSIGN_OR_RETURN(JoinGraph graph, BuildJoinGraph(*join, ctx));

  const JoinOrderBackend* backend =
      FindJoinOrderBackend(options_->join_order_backend);
  if (backend == nullptr) {
    return Status::InvalidArgument("unknown join_order_backend: \"" +
                                   options_->join_order_backend + "\"");
  }

  PartialPlan best;
  switch (options_->magic_mode) {
    case OptimizerOptions::MagicMode::kCostBased: {
      MAGICDB_ASSIGN_OR_RETURN(best, backend->Order(this, graph, ctx, true));
      break;
    }
    case OptimizerOptions::MagicMode::kNever: {
      MAGICDB_ASSIGN_OR_RETURN(best, backend->Order(this, graph, ctx, false));
      break;
    }
    case OptimizerOptions::MagicMode::kAlwaysOnVirtual: {
      MAGICDB_ASSIGN_OR_RETURN(PartialPlan plain,
                               backend->Order(this, graph, ctx, false));
      auto forced = RecostWithForcedFilterJoins(graph, plain, ctx);
      best = (forced.ok() && forced->cost < plain.cost) ? std::move(*forced)
                                                        : std::move(plain);
      break;
    }
  }

  // The join tree's output layout permutes block columns (outer-first); a
  // projection restores the NaryJoin schema order unless they already
  // match.
  std::vector<int> identity(graph.num_block_cols);
  for (int i = 0; i < graph.num_block_cols; ++i) identity[i] = i;
  const bool needs_projection = best.step->output_block_cols != identity;

  Planned p;
  p.schema = node->schema();
  p.est.rows = best.rows;
  p.est.width_bytes = p.schema.TupleWidthBytes();
  p.est.cost = best.cost;
  if (needs_projection) {
    p.est.cost +=
        costs::ExprEval(best.rows * static_cast<double>(graph.num_block_cols));
  }
  p.distinct = best.distinct;
  p.order_cols = best.order_cols;  // block space == NaryJoin output space

  if (collect_breakdowns_) {
    std::vector<FilterJoinCostBreakdown> found;
    for (const JoinStep* s = best.step.get(); s != nullptr;
         s = s->outer.get()) {
      if (s->method == StepMethod::kFilterJoin) found.push_back(s->breakdown);
    }
    chosen_filter_joins_.insert(chosen_filter_joins_.end(), found.begin(),
                                found.end());
  }

  auto shared_graph = std::make_shared<JoinGraph>(std::move(graph));
  JoinStepPtr chain = best.step;
  PlanContext ctx_copy = *ctx;
  Impl* self = this;
  Schema out_schema = p.schema;
  p.build = [self, shared_graph, chain, ctx_copy,
             needs_projection, out_schema]() -> StatusOr<OpPtr> {
    PlanContext local_ctx = ctx_copy;
    MAGICDB_ASSIGN_OR_RETURN(OpPtr op,
                             self->BuildStep(*shared_graph, *chain,
                                             &local_ctx));
    if (!needs_projection) return op;
    std::vector<ExprPtr> exprs;
    exprs.reserve(out_schema.num_columns());
    for (int c = 0; c < out_schema.num_columns(); ++c) {
      const int pos = LayoutPos(chain->output_block_cols, c);
      MAGICDB_CHECK(pos >= 0);
      exprs.push_back(MakeColumnRef(pos, out_schema.column(c).type,
                                    out_schema.column(c).QualifiedName()));
    }
    return OpPtr(
        std::make_unique<ProjectOp>(std::move(op), exprs, out_schema));
  };
  return p;
}

// ----- Physical construction -----

StatusOr<OpPtr> Optimizer::Impl::BuildStep(const JoinGraph& graph,
                                           const JoinStep& step,
                                           PlanContext* ctx) {
  if (step.method == StepMethod::kAccess) {
    const InputInfo& in = graph.inputs[step.input];
    if (!step.ordered_scan_cols.empty()) {
      const OrderedIndex* index =
          in.entry->table->FindOrderedIndex(step.ordered_scan_cols);
      if (index == nullptr) {
        return Status::Internal("ordered index disappeared during planning");
      }
      OpPtr scan = std::make_unique<OrderedIndexScanOp>(in.entry->table,
                                                        index, in.alias);
      if (!in.local_preds.empty()) {
        scan = std::make_unique<FilterOp>(std::move(scan),
                                          ConjoinAll(in.local_preds));
      }
      return scan;
    }
    return in.planned.build();
  }
  MAGICDB_ASSIGN_OR_RETURN(OpPtr outer_op,
                           BuildStep(graph, *step.outer, ctx));
  const InputInfo& inner = graph.inputs[step.input];
  const std::vector<int>& out_layout = step.output_block_cols;
  const std::vector<int>& outer_layout = step.outer->output_block_cols;
  const int outer_width = static_cast<int>(outer_layout.size());

  // Residual conjuncts remapped from block space to the concat layout.
  std::vector<ExprPtr> residuals;
  for (const ExprPtr& r : step.residuals) {
    residuals.push_back(RemapBlockExpr(r, out_layout, graph.num_block_cols));
  }
  ExprPtr residual = ConjoinAll(residuals);

  std::vector<int> outer_keys;
  std::vector<int> inner_keys;
  for (const auto& [ocol, icol] : step.keys) {
    const int pos = LayoutPos(outer_layout, ocol);
    MAGICDB_CHECK(pos >= 0);
    outer_keys.push_back(pos);
    inner_keys.push_back(icol);
  }

  switch (step.method) {
    case StepMethod::kAccess:
      return Status::Internal("unreachable");

    case StepMethod::kNestedLoops: {
      MAGICDB_ASSIGN_OR_RETURN(OpPtr inner_op, inner.planned.build());
      return OpPtr(std::make_unique<NestedLoopsJoinOp>(
          std::move(outer_op), std::move(inner_op), residual));
    }

    case StepMethod::kHash: {
      MAGICDB_ASSIGN_OR_RETURN(OpPtr inner_op, inner.planned.build());
      auto hj = std::make_unique<HashJoinOp>(
          std::move(outer_op), std::move(inner_op), outer_keys, inner_keys,
          residual);
      const std::string fkey = InputFeedbackKey(inner);
      if (!fkey.empty()) {
        hj->AnnotateBuildCardinality(fkey, inner.planned.est.rows,
                                     IsOverlayKey(fkey));
      }
      return OpPtr(std::move(hj));
    }

    case StepMethod::kSortMerge: {
      MAGICDB_ASSIGN_OR_RETURN(OpPtr inner_op, inner.planned.build());
      return OpPtr(std::make_unique<SortMergeJoinOp>(
          std::move(outer_op), std::move(inner_op), outer_keys, inner_keys,
          residual, step.smj_outer_presorted));
    }

    case StepMethod::kIndexNL: {
      std::vector<int> index_cols = inner_keys;
      const HashIndex* index = inner.entry->table->FindHashIndex(index_cols);
      if (index == nullptr) {
        return Status::Internal("index disappeared during planning");
      }
      // Local predicates of the inner table run as residuals above the
      // probe (shifted into the concat layout).
      std::vector<ExprPtr> inl_residuals = residuals;
      for (const ExprPtr& p : inner.local_preds) {
        std::vector<int> mapping(inner.schema.num_columns());
        for (int c = 0; c < inner.schema.num_columns(); ++c) {
          mapping[c] = outer_width + c;
        }
        inl_residuals.push_back(p->RemapColumns(mapping));
      }
      return OpPtr(std::make_unique<IndexNestedLoopsJoinOp>(
          std::move(outer_op), inner.entry->table, index, outer_keys,
          ConjoinAll(inl_residuals),
          /*remote_probe=*/inner.site != kLocalSite, inner.alias));
    }

    case StepMethod::kFnProbe:
    case StepMethod::kFnMemo: {
      return OpPtr(std::make_unique<FunctionProbeJoinOp>(
          std::move(outer_op), inner.entry->function, outer_keys, residual,
          /*memoize=*/step.method == StepMethod::kFnMemo));
    }

    case StepMethod::kFilterJoin: {
      OpPtr inner_op;
      switch (inner.access) {
        case AccessKind::kLocalTable:
        case AccessKind::kRemoteTable: {
          std::vector<int> probe_keys = inner_keys;
          if (!step.filter_key_positions.empty()) {
            probe_keys.clear();
            for (int pos : step.filter_key_positions) {
              probe_keys.push_back(inner_keys[pos]);
            }
          }
          OpPtr scan =
              std::make_unique<SeqScanOp>(inner.entry->table, inner.alias);
          inner_op = std::make_unique<FilterProbeOp>(
              std::move(scan), step.binding_id, probe_keys);
          if (!inner.local_preds.empty()) {
            inner_op = std::make_unique<FilterOp>(
                std::move(inner_op), ConjoinAll(inner.local_preds));
          }
          if (inner.access == AccessKind::kRemoteTable) {
            inner_op = std::make_unique<ShipOp>(std::move(inner_op),
                                                inner.site, kLocalSite);
          }
          break;
        }
        case AccessKind::kFunction: {
          Schema key_schema;
          for (int icol : inner_keys) {
            key_schema.AddColumn(inner.schema.column(icol));
          }
          OpPtr keys_scan = std::make_unique<FilterSetScanOp>(
              step.binding_id, key_schema);
          inner_op = std::make_unique<FunctionCallOp>(std::move(keys_scan),
                                                      inner.entry->function);
          break;
        }
        case AccessKind::kView:
        case AccessKind::kSubplan: {
          MAGICDB_CHECK(step.rewritten_inner != nullptr);
          PlanContext restricted_ctx = *ctx;
          restricted_ctx.filter_set_rows[step.binding_id] =
              std::max(1.0, step.breakdown.filter_set_size);
          restricted_ctx.filter_set_fpr[step.binding_id] =
              step.fs_impl == FilterSetImpl::kBloom
                  ? BloomFprFor(options_->bloom_bits_per_key)
                  : 0.0;
          const bool saved = collect_breakdowns_;
          collect_breakdowns_ = false;
          auto planned = PlanNode(step.rewritten_inner, &restricted_ctx);
          collect_breakdowns_ = saved;
          if (!planned.ok()) return planned.status();
          MAGICDB_ASSIGN_OR_RETURN(inner_op, planned->build());
          if (!inner.local_preds.empty()) {
            inner_op = std::make_unique<FilterOp>(
                std::move(inner_op), ConjoinAll(inner.local_preds));
          }
          break;
        }
        case AccessKind::kFilterSetRef:
          return Status::Internal(
              "filter join over a filter-set reference is not supported");
      }
      const int ship_site =
          inner.access == AccessKind::kRemoteTable ? inner.site : 0;
      auto fj = std::make_unique<FilterJoinOp>(
          std::move(outer_op), std::move(inner_op), step.binding_id,
          outer_keys, inner_keys, residual, step.fs_impl, ship_site,
          options_->bloom_bits_per_key, step.filter_key_positions);
      fj->AnnotateInnerCardinality("fj:" + step.binding_id,
                                   step.breakdown.restricted_rows);
      return OpPtr(std::move(fj));
    }
  }
  return Status::Internal("unhandled join method");
}

// ----- Exhaustive enumeration for Figure 3 (E2) -----

StatusOr<std::vector<JoinOrderCost>> Optimizer::Impl::EnumerateOrders(
    const NaryJoinNode& join, PlanContext* ctx) {
  MAGICDB_ASSIGN_OR_RETURN(JoinGraph graph, BuildJoinGraph(join, ctx));
  const int n = static_cast<int>(graph.inputs.size());
  if (n > 8) {
    return Status::InvalidArgument(
        "EnumerateJoinOrders supports at most 8 inputs");
  }
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;

  std::vector<JoinOrderCost> results;
  do {
    JoinOrderCost joc;
    bool feasible = true;
    for (int mode = 0; mode < 2 && feasible; ++mode) {
      const bool allow_fj = mode == 1;
      auto cur = AccessPlan(graph, perm[0]);
      if (!cur.ok()) {
        feasible = false;
        break;
      }
      std::string methods = graph.inputs[perm[0]].alias;
      PartialPlan plan = std::move(*cur);
      for (int k = 1; k < n && feasible; ++k) {
        double best_cost = -1;
        PartialPlan best_plan;
        StepMethod best_method = StepMethod::kNestedLoops;
        for (StepMethod m : kJoinMethods) {
          if (m == StepMethod::kFilterJoin && !allow_fj) continue;
          if (m == StepMethod::kFnMemo && !options_->enable_function_memo) {
            continue;
          }
          auto r = CostJoinStep(graph, plan, perm[k], m, ctx);
          if (!r.ok()) continue;
          if (best_cost < 0 || r->cost < best_cost) {
            best_cost = r->cost;
            best_plan = std::move(*r);
            best_method = m;
          }
        }
        if (best_cost < 0) {
          feasible = false;
          break;
        }
        plan = std::move(best_plan);
        methods += std::string(" *") + StepMethodName(best_method) + "* " +
                   graph.inputs[perm[k]].alias;
      }
      if (!feasible) break;
      if (allow_fj) {
        joc.cost_with_filter_join = plan.cost;
        joc.methods_with = methods;
      } else {
        joc.cost_without_filter_join = plan.cost;
        joc.methods_without = methods;
      }
    }
    if (!feasible) continue;
    for (int i = 0; i < n; ++i) {
      joc.order.push_back(graph.inputs[perm[i]].alias);
    }
    results.push_back(std::move(joc));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return results;
}

}  // namespace magicdb
