#ifndef MAGICDB_OPTIMIZER_OPTIMIZER_OPTIONS_H_
#define MAGICDB_OPTIMIZER_OPTIMIZER_OPTIONS_H_

#include <cstdint>
#include <string>

namespace magicdb {

/// Controls which plan space the optimizer explores. The defaults implement
/// the paper's proposal: Filter Join considered as a join method under
/// Limitations 1-3, with cost-based selection. The other settings exist for
/// the ablation and baseline experiments (DESIGN.md E7, E11, E12).
struct OptimizerOptions {
  /// How magic sets / Filter Joins participate in planning.
  enum class MagicMode {
    /// The paper's contribution: Filter Join costed against every other
    /// join method inside the DP.
    kCostBased,
    /// Baseline: never consider Filter Joins (a classic System R).
    kNever,
    /// Baseline (Starburst-style heuristic): plan without Filter Joins,
    /// then force the most restrictive Filter Join onto every virtual
    /// inner in the resulting order, and keep the cheaper of the two
    /// complete plans.
    kAlwaysOnVirtual,
  };

  MagicMode magic_mode = MagicMode::kCostBased;

  /// Consider Filter Joins for plain stored local tables too (§5.3 "local
  /// semi-join"). Virtual relations are always eligible in kCostBased mode.
  bool filter_join_on_stored = true;

  /// Limitation 3: which filter-set implementations are considered.
  bool consider_exact_filter_sets = true;
  bool consider_bloom_filter_sets = true;
  double bloom_bits_per_key = 10.0;
  /// Additionally try single-attribute filter sets on multi-attribute
  /// joins (§2.1's partial SIPS / §3.3's lossy-by-omission variant). Adds
  /// a small constant factor per Filter Join costing.
  bool consider_partial_key_filter_sets = false;

  /// Limitation 2 ablation: when true, every prefix of the outer plan is
  /// tried as the production set (costing becomes O(N) more expensive but
  /// can find cheaper filter sets). When false (the paper's default), the
  /// production set is the full outer relation.
  bool explore_prefix_production_sets = false;

  /// §4.2 performance knob: number of equivalence classes used when
  /// estimating the cost/cardinality of a restricted virtual inner. More
  /// classes = more nested optimizer invocations but tighter estimates.
  int equivalence_classes = 4;

  /// Join methods considered.
  bool enable_nested_loops = true;
  bool enable_index_nested_loops = true;
  bool enable_hash_join = true;
  bool enable_sort_merge = true;
  /// Memoized table-function invocation ("function caching" in Figure 6).
  bool enable_function_memo = true;

  /// Keep sort-order-distinct candidates per DP subset (System R
  /// "interesting orders"). Off = one best plan per subset.
  bool interesting_orders = true;

  /// Memory the executor will have (affects sort costing).
  int64_t memory_budget_bytes = 4 * 1024 * 1024;

  /// Degree of parallelism the executor will use. Values > 1 divide the
  /// CPU terms of scan and hash build/probe costing by this factor
  /// (morsel-driven workers split that work); page and message terms are
  /// unchanged — parallelism does not reduce total I/O or communication.
  /// Plan choice may legitimately differ from dop=1 as CPU-bound
  /// alternatives become relatively cheaper.
  int degree_of_parallelism = 1;

  /// Join-order search strategy (see src/optimizer/join_order_backend.h).
  /// "dp" is the exhaustive System-R dynamic program; "greedy" is a
  /// cheapest-next-step heuristic over the same cost model. Unknown names
  /// fail planning with InvalidArgument.
  std::string join_order_backend = "dp";
};

/// Stable serialization of every field that influences plan choice. Plan
/// caches fold this into their key so that two sessions with different
/// knobs never share a cached plan. Keep in sync with the struct: a field
/// missing here would let a stale plan leak across option changes.
inline std::string OptimizerOptionsFingerprint(const OptimizerOptions& o) {
  std::string fp;
  fp.reserve(64);
  fp += std::to_string(static_cast<int>(o.magic_mode));
  fp += '|';
  fp += std::to_string(static_cast<int>(o.filter_join_on_stored));
  fp += std::to_string(static_cast<int>(o.consider_exact_filter_sets));
  fp += std::to_string(static_cast<int>(o.consider_bloom_filter_sets));
  fp += '|';
  fp += std::to_string(o.bloom_bits_per_key);
  fp += '|';
  fp += std::to_string(static_cast<int>(o.consider_partial_key_filter_sets));
  fp += std::to_string(static_cast<int>(o.explore_prefix_production_sets));
  fp += '|';
  fp += std::to_string(o.equivalence_classes);
  fp += '|';
  fp += std::to_string(static_cast<int>(o.enable_nested_loops));
  fp += std::to_string(static_cast<int>(o.enable_index_nested_loops));
  fp += std::to_string(static_cast<int>(o.enable_hash_join));
  fp += std::to_string(static_cast<int>(o.enable_sort_merge));
  fp += std::to_string(static_cast<int>(o.enable_function_memo));
  fp += std::to_string(static_cast<int>(o.interesting_orders));
  fp += '|';
  fp += std::to_string(o.memory_budget_bytes);
  fp += '|';
  fp += std::to_string(o.degree_of_parallelism);
  fp += '|';
  fp += o.join_order_backend;
  return fp;
}

/// Work counters the optimizer accumulates during one Optimize() call;
/// experiments E5/E7 read these to measure optimization effort.
struct OptimizerStats {
  int64_t join_steps_costed = 0;       // (subset, inner, method) combinations
  int64_t dp_entries = 0;              // DP table entries created
  int64_t nested_optimizations = 0;    // recursive Optimize calls for views
  int64_t eq_class_hits = 0;           // parametric cache hits
  int64_t eq_class_misses = 0;         // parametric cache fills
  int64_t filter_joins_costed = 0;

  void Reset() { *this = OptimizerStats(); }
};

}  // namespace magicdb

#endif  // MAGICDB_OPTIMIZER_OPTIMIZER_OPTIONS_H_
