#ifndef MAGICDB_OPTIMIZER_COST_MODEL_H_
#define MAGICDB_OPTIMIZER_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "src/common/cost_counters.h"

namespace magicdb {

/// Cost/cardinality estimate for producing a tuple stream once. Costs are
/// in page-I/O units (see CostConstants); rows are fractional estimates.
struct Estimate {
  double cost = 0.0;
  double rows = 0.0;
  int64_t width_bytes = 8;

  double Pages() const { return PagesForRowsD(rows, width_bytes); }

  /// Fractional-page analogue of PagesForRows for estimates.
  static double PagesForRowsD(double rows, int64_t width_bytes);
};

/// Pure cost formulas shared by every join-method costing path. They mirror
/// exactly what the executor charges (see the operator implementations), so
/// predicted and measured costs are comparable component by component.
namespace costs {

/// Full scan of a stored table. `dop` > 1 models morsel-driven parallel
/// execution: the per-tuple CPU term divides by the degree of parallelism
/// (workers scan disjoint morsels concurrently) while the page term is
/// unchanged — the same pages are read regardless of who reads them, and
/// the counters measure totals, not elapsed time.
double SeqScan(double rows, int64_t width_bytes, int dop = 1);

/// Spooling `rows` tuples to a temporary (page writes).
double MaterializeWrite(double rows, int64_t width_bytes);

/// Replaying a spool (page reads + tuple CPU).
double SpoolRead(double rows, int64_t width_bytes);

/// Hash-table build over `rows`. `dop` > 1 divides the CPU term: the build
/// is partitioned across workers (each staging a disjoint slice).
double HashBuild(double rows, int dop = 1);

/// `probes` hash probes plus `out_rows` emitted join tuples. `dop` > 1
/// divides the CPU terms (probes route to partitions in parallel).
double HashProbe(double probes, double out_rows, int dop = 1);

/// Hash aggregation over `input_rows` input rows: one hash op per row,
/// `exprs` expression evaluations (group keys + aggregate arguments), and
/// per-group output CPU for `groups` groups. `dop` > 1 divides all three
/// CPU terms: workers accumulate morsel-local partial tables and merge
/// disjoint key-hash partitions concurrently (two-phase aggregation), so
/// both the accumulate and the merge scale with the gang. At dop=1 this is
/// exactly HashBuild + ExprEval + TupleCpu.
double HashAggregate(double input_rows, double exprs, double groups,
                     int dop = 1);

/// In-memory sort of `rows` (n log2 n comparisons) plus the expected
/// external merge passes (write + read each) if the data exceeds
/// `memory_budget_bytes`.
double Sort(double rows, int64_t width_bytes, int64_t memory_budget_bytes);

/// Per-tuple CPU for passing `rows` through an operator.
double TupleCpu(double rows);

/// Predicate evaluation over `rows`.
double ExprEval(double rows);

/// Shipping `rows` tuples of `width_bytes` across sites: one connection
/// message, one message per page of payload, per-byte cost.
double Ship(double rows, int64_t width_bytes);

/// Shipping a blob of `bytes` (e.g. a Bloom filter) across sites.
double ShipBytes(double bytes);

/// One index probe returning `matches` rows from an unclustered index.
double IndexProbe(double matches);

/// Remote probe surcharge (System R* fetch-matches): round-trip messages
/// plus key/result bytes.
double RemoteProbe(double key_bytes, double matches, int64_t row_width);

/// `invocations` table-function calls.
double FunctionInvoke(double invocations);

/// Extra cost of a hash join whose build side exceeds the memory budget:
/// the expected Grace partitioning passes (write + read each) over both
/// inputs, where each pass divides partitions by the spill fanout. Zero
/// when the build fits.
double HashSpill(double build_rows, int64_t build_width, double probe_rows,
                 int64_t probe_width, int64_t memory_budget_bytes);

/// Extra cost of a hash aggregation whose input exceeds the memory budget:
/// the expected partitioning passes (write + read each) over the input.
/// Zero when the input fits.
double AggregateSpill(double input_rows, int64_t width_bytes,
                      int64_t memory_budget_bytes);

/// Multiplier in (0, 1] on per-tuple CPU when operators run vectorized with
/// `batch_size` rows per batch: interpretation overhead amortizes over the
/// batch, asymptoting at kVectorizedCpuFloor for large batches. 1.0 for
/// batch_size <= 1 (tuple-at-a-time). Diagnostic only — join ordering does
/// NOT consult it, so every batch size executes the identical plan (the
/// counter-identity guarantee compares executions of one plan).
double VectorizedCpuFactor(int64_t batch_size);

}  // namespace costs

/// Expected number of distinct values observed after `draws` samples (with
/// replacement) from a domain of `domain` equally likely values — the
/// with-replacement Yao variant the optimizer uses to size filter sets
/// produced by distinct projection of a join result.
double ExpectedDistinct(double domain, double draws);

/// The seven cost components of a Filter Join (Table 1 of the paper). The
/// total join-step cost excludes JoinCost_P, which the DP accounts for as
/// the outer plan's cost.
struct FilterJoinCostBreakdown {
  double join_cost_p = 0.0;      // cost of computing the outer (context)
  double production_cost = 0.0;  // ProductionCost_P: materialize P
  double proj_cost = 0.0;        // ProjCost_F: distinct projection
  double avail_cost_f = 0.0;     // AvailCost_F: materialize/ship F
  double filter_cost_rk = 0.0;   // FilterCost_Rk: restricted inner
  double avail_cost_rk = 0.0;    // AvailCost_Rk': materialize/ship R_k'
  double final_join_cost = 0.0;  // FinalJoinCost: P join R_k'

  /// Derived estimates the costing produced along the way.
  double filter_set_size = 0.0;  // |F|
  double restricted_rows = 0.0;  // |R_k'|
  /// Production-set choice: -1 = full outer (Limitation 2); otherwise the
  /// number of outer inputs in the chosen prefix (Limitation-2 ablation).
  int production_prefix_len = -1;
  /// Number of join attributes contributing to the filter set (a partial
  /// SIPS omits some, trading selectivity for a cheaper filter).
  int filter_key_count = 0;

  /// Join-step cost (everything except JoinCost_P).
  double StepTotal() const {
    return production_cost + proj_cost + avail_cost_f + filter_cost_rk +
           avail_cost_rk + final_join_cost;
  }

  std::string ToString() const;
};

}  // namespace magicdb

#endif  // MAGICDB_OPTIMIZER_COST_MODEL_H_
