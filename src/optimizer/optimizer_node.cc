#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/exec/aggregate_op.h"
#include "src/exec/basic_ops.h"
#include "src/exec/exchange_op.h"
#include "src/exec/filter_join_op.h"
#include "src/exec/scan_ops.h"
#include "src/optimizer/optimizer_impl.h"
#include "src/stats/table_stats.h"

namespace magicdb {

using optimizer_internal::AccessKind;
using optimizer_internal::BuildFn;
using optimizer_internal::Planned;

namespace optimizer_internal {

const char* StepMethodName(StepMethod m) {
  switch (m) {
    case StepMethod::kAccess:
      return "Access";
    case StepMethod::kNestedLoops:
      return "NL";
    case StepMethod::kIndexNL:
      return "INL";
    case StepMethod::kHash:
      return "HJ";
    case StepMethod::kSortMerge:
      return "SMJ";
    case StepMethod::kFilterJoin:
      return "FJ";
    case StepMethod::kFnProbe:
      return "FnProbe";
    case StepMethod::kFnMemo:
      return "FnMemo";
  }
  return "?";
}

}  // namespace optimizer_internal

namespace {

/// Scales per-column distinct counts after a cardinality reduction from
/// `rows` to `new_rows` using Yao's formula.
std::vector<double> ScaleDistinct(const std::vector<double>& distinct,
                                  double rows, double new_rows) {
  std::vector<double> out(distinct.size());
  for (size_t i = 0; i < distinct.size(); ++i) {
    if (rows <= 0 || distinct[i] <= 0) {
      out[i] = 0;
    } else if (new_rows >= rows) {
      out[i] = distinct[i];
    } else {
      out[i] = YaoEstimate(static_cast<int64_t>(rows),
                           static_cast<int64_t>(std::max(1.0, distinct[i])),
                           static_cast<int64_t>(std::max(1.0, new_rows)));
      out[i] = std::max(1.0, std::min(out[i], new_rows));
    }
  }
  return out;
}

double ProductCapped(const std::vector<double>& distinct,
                     const std::vector<int>& cols, double cap) {
  double d = 1.0;
  for (int c : cols) {
    d *= std::max(1.0, distinct[c]);
    if (d > cap) return std::max(1.0, cap);
  }
  return std::max(1.0, std::min(d, cap));
}

}  // namespace

// ----- Facade -----

Optimizer::Optimizer(const Catalog* catalog, OptimizerOptions options)
    : options_(options), catalog_(catalog) {
  impl_ = std::make_unique<Impl>(catalog, &options_, &stats_);
}

Optimizer::~Optimizer() = default;

void Optimizer::set_cardinality_overlay(const CardinalityOverlay* overlay) {
  impl_->overlay_ = overlay;
}

StatusOr<OptimizedPlan> Optimizer::Optimize(const LogicalPtr& plan) {
  if (!plan) return Status::InvalidArgument("cannot optimize a null plan");
  impl_->chosen_filter_joins_.clear();
  optimizer_internal::PlanContext ctx;
  MAGICDB_ASSIGN_OR_RETURN(Planned planned, impl_->PlanNode(plan, &ctx));
  OptimizedPlan result;
  MAGICDB_ASSIGN_OR_RETURN(result.root, planned.build());
  result.est_cost = planned.est.cost;
  result.est_rows = planned.est.rows;
  result.filter_joins = impl_->chosen_filter_joins_;
  result.explain = "estimated cost=" + std::to_string(planned.est.cost) +
                   " rows=" + std::to_string(planned.est.rows) +
                   " backend=" + options_.join_order_backend + "\n" +
                   result.root->TreeString();
  return result;
}

StatusOr<OptimizedPlan> Optimizer::OptimizeWithFilterSets(
    const LogicalPtr& plan,
    const std::map<std::string, double>& assumed_rows) {
  if (!plan) return Status::InvalidArgument("cannot optimize a null plan");
  impl_->chosen_filter_joins_.clear();
  optimizer_internal::PlanContext ctx;
  for (const auto& [binding, rows] : assumed_rows) {
    ctx.filter_set_rows[binding] = rows;
    ctx.filter_set_fpr[binding] = 0.0;
  }
  MAGICDB_ASSIGN_OR_RETURN(Planned planned, impl_->PlanNode(plan, &ctx));
  OptimizedPlan result;
  MAGICDB_ASSIGN_OR_RETURN(result.root, planned.build());
  result.est_cost = planned.est.cost;
  result.est_rows = planned.est.rows;
  result.filter_joins = impl_->chosen_filter_joins_;
  result.explain = "estimated cost=" + std::to_string(planned.est.cost) +
                   " rows=" + std::to_string(planned.est.rows) +
                   " backend=" + options_.join_order_backend + "\n" +
                   result.root->TreeString();
  return result;
}

StatusOr<std::vector<JoinOrderCost>> Optimizer::EnumerateJoinOrders(
    const LogicalPtr& plan) {
  // Descend through unary nodes to the topmost join block.
  LogicalPtr current = plan;
  while (current && current->kind() != LogicalKind::kNaryJoin) {
    if (current->children().size() != 1) {
      return Status::InvalidArgument(
          "EnumerateJoinOrders: plan has no reachable join block");
    }
    current = current->children()[0];
  }
  if (!current) {
    return Status::InvalidArgument("EnumerateJoinOrders: null plan");
  }
  optimizer_internal::PlanContext ctx;
  return impl_->EnumerateOrders(
      *static_cast<const NaryJoinNode*>(current.get()), &ctx);
}

// ----- Impl: node dispatch -----

StatusOr<Planned> Optimizer::Impl::PlanNode(const LogicalPtr& node,
                                            PlanContext* ctx) {
  switch (node->kind()) {
    case LogicalKind::kRelScan:
      return PlanRelScan(node, ctx);
    case LogicalKind::kFilterSetRef:
      return PlanFilterSetRef(node, ctx);
    case LogicalKind::kFilterSetProbe:
      return PlanFilterSetProbe(node, ctx);
    case LogicalKind::kNaryJoin:
      return PlanJoinBlock(node, ctx);
    case LogicalKind::kFilter:
      return PlanFilter(node, ctx);
    case LogicalKind::kProject:
      return PlanProject(node, ctx);
    case LogicalKind::kAggregate:
      return PlanAggregate(node, ctx);
    case LogicalKind::kDistinct:
      return PlanDistinct(node, ctx);
    case LogicalKind::kSort:
      return PlanSort(node, ctx);
  }
  return Status::Internal("unhandled logical node kind");
}

std::string Optimizer::Impl::NextBindingId(const std::string& hint) {
  return "fs_" + hint + "_" + std::to_string(next_binding_++);
}

StatusOr<Planned> Optimizer::Impl::PlanRelScan(const LogicalPtr& node,
                                               PlanContext* ctx) {
  const auto* scan = static_cast<const RelScanNode*>(node.get());
  MAGICDB_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                           catalog_->Lookup(scan->relation_name()));
  Planned p;
  p.schema = node->schema();
  const int ncols = p.schema.num_columns();

  switch (entry->kind) {
    case CatalogEntry::Kind::kBaseTable:
    case CatalogEntry::Kind::kRemoteTable: {
      const Table* table = entry->table;
      const double rows = entry->stats_valid
                              ? static_cast<double>(entry->stats.num_rows)
                              : static_cast<double>(table->NumRows());
      p.est.rows = rows;
      p.est.width_bytes = p.schema.TupleWidthBytes();
      p.est.cost = costs::SeqScan(rows, p.est.width_bytes,
                                  options_->degree_of_parallelism);
      p.distinct.resize(ncols);
      for (int c = 0; c < ncols; ++c) {
        p.distinct[c] = entry->stats_valid
                            ? static_cast<double>(
                                  entry->stats.columns[c].num_distinct)
                            : rows;
      }
      const std::string alias = scan->alias();
      const int site = entry->site;
      if (entry->kind == CatalogEntry::Kind::kRemoteTable) {
        p.est.cost += costs::Ship(rows, p.est.width_bytes);
        p.build = [table, alias, site]() -> StatusOr<OpPtr> {
          return OpPtr(std::make_unique<ShipOp>(
              std::make_unique<SeqScanOp>(table, alias), site, kLocalSite));
        };
      } else {
        p.build = [table, alias]() -> StatusOr<OpPtr> {
          return OpPtr(std::make_unique<SeqScanOp>(table, alias));
        };
      }
      return p;
    }
    case CatalogEntry::Kind::kView: {
      auto it = view_cache_.find(entry->name);
      if (it != view_cache_.end()) {
        Planned cached = it->second;
        cached.schema = node->schema();
        return cached;
      }
      stats_->nested_optimizations += 1;
      MAGICDB_ASSIGN_OR_RETURN(Planned inner,
                               PlanNode(entry->view_plan, ctx));
      inner.schema = node->schema();
      view_cache_[entry->name] = inner;
      return inner;
    }
    case CatalogEntry::Kind::kTableFunction:
      return Status::InvalidArgument(
          "relation " + entry->name +
          " is a table function and can only be joined with bound arguments");
  }
  return Status::Internal("unhandled catalog entry kind");
}

StatusOr<Planned> Optimizer::Impl::PlanFilter(const LogicalPtr& node,
                                              PlanContext* ctx) {
  const auto* filter = static_cast<const FilterNode*>(node.get());
  MAGICDB_ASSIGN_OR_RETURN(Planned child,
                           PlanNode(node->children()[0], ctx));
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(filter->predicate(), &conjuncts);
  double selectivity = 1.0;
  for (const ExprPtr& c : conjuncts) {
    selectivity *=
        ConjunctSelectivity(c, child.distinct, nullptr, child.est.rows);
  }
  Planned p;
  p.schema = node->schema();
  p.est.rows = child.est.rows * selectivity;
  p.est.width_bytes = child.est.width_bytes;
  p.est.cost = child.est.cost + costs::ExprEval(child.est.rows);
  p.distinct = ScaleDistinct(child.distinct, child.est.rows, p.est.rows);
  p.order_cols = child.order_cols;  // filters preserve order
  ExprPtr pred = filter->predicate();
  BuildFn child_build = child.build;
  p.build = [child_build, pred]() -> StatusOr<OpPtr> {
    MAGICDB_ASSIGN_OR_RETURN(OpPtr c, child_build());
    return OpPtr(std::make_unique<FilterOp>(std::move(c), pred));
  };
  return p;
}

StatusOr<Planned> Optimizer::Impl::PlanProject(const LogicalPtr& node,
                                               PlanContext* ctx) {
  const auto* project = static_cast<const ProjectNode*>(node.get());
  MAGICDB_ASSIGN_OR_RETURN(Planned child,
                           PlanNode(node->children()[0], ctx));
  Planned p;
  p.schema = node->schema();
  p.est.rows = child.est.rows;
  p.est.width_bytes = p.schema.TupleWidthBytes();
  p.est.cost =
      child.est.cost +
      costs::ExprEval(child.est.rows *
                      static_cast<double>(project->exprs().size()));
  p.distinct.resize(project->exprs().size());
  std::vector<int> child_to_out(child.schema.num_columns(), -1);
  for (size_t i = 0; i < project->exprs().size(); ++i) {
    const Expr* e = project->exprs()[i].get();
    if (e->kind() == ExprKind::kColumnRef) {
      const int idx = static_cast<const ColumnRefExpr*>(e)->index();
      p.distinct[i] = child.distinct[idx];
      if (child_to_out[idx] < 0) child_to_out[idx] = static_cast<int>(i);
    } else {
      p.distinct[i] = child.est.rows;
    }
  }
  // Order survives projection as long as its leading columns survive.
  for (int oc : child.order_cols) {
    if (oc >= static_cast<int>(child_to_out.size()) || child_to_out[oc] < 0) {
      break;
    }
    p.order_cols.push_back(child_to_out[oc]);
  }
  std::vector<ExprPtr> exprs = project->exprs();
  Schema schema = p.schema;
  BuildFn child_build = child.build;
  p.build = [child_build, exprs, schema]() -> StatusOr<OpPtr> {
    MAGICDB_ASSIGN_OR_RETURN(OpPtr c, child_build());
    return OpPtr(std::make_unique<ProjectOp>(std::move(c), exprs, schema));
  };
  return p;
}

StatusOr<Planned> Optimizer::Impl::PlanAggregate(const LogicalPtr& node,
                                                 PlanContext* ctx) {
  const auto* agg = static_cast<const AggregateNode*>(node.get());
  MAGICDB_ASSIGN_OR_RETURN(Planned child,
                           PlanNode(node->children()[0], ctx));
  Planned p;
  p.schema = node->schema();
  const size_t ng = agg->group_by().size();
  double groups = 1.0;
  if (ng > 0) {
    groups = 1.0;
    for (const ExprPtr& g : agg->group_by()) {
      if (g->kind() == ExprKind::kColumnRef) {
        groups *= std::max(
            1.0,
            child.distinct[static_cast<const ColumnRefExpr*>(g.get())
                               ->index()]);
      } else {
        groups *= std::max(1.0, child.est.rows / 10.0);
      }
      if (groups > child.est.rows) break;
    }
    groups = std::max(1.0, std::min(groups, child.est.rows));
    if (child.est.rows <= 0) groups = 0.0;
  }
  p.est.rows = groups;
  p.est.width_bytes = p.schema.TupleWidthBytes();
  p.est.cost = child.est.cost +
               costs::HashAggregate(
                   child.est.rows,
                   child.est.rows * static_cast<double>(ng + agg->aggs().size()),
                   groups, options_->degree_of_parallelism);
  p.est.cost += costs::AggregateSpill(child.est.rows, child.est.width_bytes,
                                      options_->memory_budget_bytes);
  p.distinct.resize(p.schema.num_columns());
  for (size_t i = 0; i < ng; ++i) {
    const Expr* g = agg->group_by()[i].get();
    double d = groups;
    if (g->kind() == ExprKind::kColumnRef) {
      d = std::min(
          groups,
          child.distinct[static_cast<const ColumnRefExpr*>(g)->index()]);
    }
    p.distinct[i] = std::max(groups > 0 ? 1.0 : 0.0, d);
  }
  for (size_t i = ng; i < p.distinct.size(); ++i) p.distinct[i] = groups;

  std::vector<ExprPtr> group_by = agg->group_by();
  std::vector<AggSpec> aggs = agg->aggs();
  Schema schema = p.schema;
  BuildFn child_build = child.build;
  std::string feedback_key = "agg:";
  for (const ExprPtr& g : group_by) {
    feedback_key += g->ToString();
    feedback_key += ',';
  }
  const double est_groups = groups;
  p.build = [child_build, group_by, aggs, schema, feedback_key,
             est_groups]() -> StatusOr<OpPtr> {
    MAGICDB_ASSIGN_OR_RETURN(OpPtr c, child_build());
    auto op = std::make_unique<HashAggregateOp>(std::move(c), group_by, aggs,
                                                schema);
    op->AnnotateGroupCardinality(feedback_key, est_groups);
    return OpPtr(std::move(op));
  };
  return p;
}

StatusOr<Planned> Optimizer::Impl::PlanDistinct(const LogicalPtr& node,
                                                PlanContext* ctx) {
  MAGICDB_ASSIGN_OR_RETURN(Planned child,
                           PlanNode(node->children()[0], ctx));
  Planned p;
  p.schema = node->schema();
  std::vector<int> all(p.schema.num_columns());
  for (int i = 0; i < p.schema.num_columns(); ++i) all[i] = i;
  p.est.rows = std::min(child.est.rows,
                        ProductCapped(child.distinct, all, child.est.rows));
  p.est.width_bytes = child.est.width_bytes;
  p.est.cost = child.est.cost + costs::HashBuild(child.est.rows);
  p.distinct = ScaleDistinct(child.distinct, child.est.rows, p.est.rows);
  BuildFn child_build = child.build;
  p.build = [child_build]() -> StatusOr<OpPtr> {
    MAGICDB_ASSIGN_OR_RETURN(OpPtr c, child_build());
    return OpPtr(std::make_unique<DistinctOp>(std::move(c)));
  };
  return p;
}

StatusOr<Planned> Optimizer::Impl::PlanSort(const LogicalPtr& node,
                                            PlanContext* ctx) {
  const auto* sort = static_cast<const SortNode*>(node.get());
  MAGICDB_ASSIGN_OR_RETURN(Planned child,
                           PlanNode(node->children()[0], ctx));
  // Interesting orders: skip the sort entirely when the child already
  // delivers the requested (ascending, column-reference) order.
  if (options_->interesting_orders &&
      sort->keys().size() <= child.order_cols.size()) {
    bool satisfied = true;
    for (size_t i = 0; i < sort->keys().size(); ++i) {
      const SortNode::SortKey& k = sort->keys()[i];
      if (!k.ascending || k.expr->kind() != ExprKind::kColumnRef ||
          static_cast<const ColumnRefExpr*>(k.expr.get())->index() !=
              child.order_cols[i]) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) {
      Planned p = child;
      p.schema = node->schema();
      return p;
    }
  }
  Planned p = child;
  p.schema = node->schema();
  p.order_cols.clear();
  for (const SortNode::SortKey& k : sort->keys()) {
    if (!k.ascending || k.expr->kind() != ExprKind::kColumnRef) break;
    p.order_cols.push_back(
        static_cast<const ColumnRefExpr*>(k.expr.get())->index());
  }
  p.est.cost += costs::Sort(child.est.rows, child.est.width_bytes,
                            options_->memory_budget_bytes);
  std::vector<SortOp::SortKey> keys;
  keys.reserve(sort->keys().size());
  for (const SortNode::SortKey& k : sort->keys()) {
    keys.push_back({k.expr, k.ascending});
  }
  BuildFn child_build = child.build;
  p.build = [child_build, keys]() -> StatusOr<OpPtr> {
    MAGICDB_ASSIGN_OR_RETURN(OpPtr c, child_build());
    return OpPtr(std::make_unique<SortOp>(std::move(c), keys));
  };
  return p;
}

StatusOr<Planned> Optimizer::Impl::PlanFilterSetRef(const LogicalPtr& node,
                                                    PlanContext* ctx) {
  const auto* ref = static_cast<const FilterSetRefNode*>(node.get());
  auto it = ctx->filter_set_rows.find(ref->binding_id());
  if (it == ctx->filter_set_rows.end()) {
    return Status::Internal("filter set cardinality not assumed for " +
                            ref->binding_id());
  }
  const double rows = it->second;
  Planned p;
  p.schema = node->schema();
  p.est.rows = rows;
  p.est.width_bytes = p.schema.TupleWidthBytes();
  p.est.cost = costs::SpoolRead(rows, p.est.width_bytes);
  p.distinct.assign(p.schema.num_columns(), std::max(1.0, rows));
  std::string binding = ref->binding_id();
  Schema schema = p.schema;
  p.build = [binding, schema]() -> StatusOr<OpPtr> {
    return OpPtr(std::make_unique<FilterSetScanOp>(binding, schema));
  };
  return p;
}

StatusOr<Planned> Optimizer::Impl::PlanFilterSetProbe(const LogicalPtr& node,
                                                      PlanContext* ctx) {
  const auto* probe = static_cast<const FilterSetProbeNode*>(node.get());
  MAGICDB_ASSIGN_OR_RETURN(Planned child,
                           PlanNode(node->children()[0], ctx));
  auto it = ctx->filter_set_rows.find(probe->binding_id());
  if (it == ctx->filter_set_rows.end()) {
    return Status::Internal("filter set cardinality not assumed for " +
                            probe->binding_id());
  }
  const double filter_rows = it->second;
  double fpr = 0.0;
  auto fit = ctx->filter_set_fpr.find(probe->binding_id());
  if (fit != ctx->filter_set_fpr.end()) fpr = fit->second;

  const double key_domain =
      ProductCapped(child.distinct, probe->key_columns(), child.est.rows);
  double selectivity = key_domain > 0
                           ? std::min(1.0, filter_rows / key_domain)
                           : 1.0;
  selectivity = selectivity + (1.0 - selectivity) * fpr;

  Planned p;
  p.schema = node->schema();
  p.est.rows = child.est.rows * selectivity;
  p.est.width_bytes = child.est.width_bytes;
  p.est.cost = child.est.cost + costs::HashProbe(child.est.rows, 0.0);
  p.distinct = ScaleDistinct(child.distinct, child.est.rows, p.est.rows);
  for (int kc : probe->key_columns()) {
    p.distinct[kc] = std::min(p.distinct[kc], std::max(1.0, filter_rows));
  }
  std::string binding = probe->binding_id();
  std::vector<int> keys = probe->key_columns();
  BuildFn child_build = child.build;
  p.build = [child_build, binding, keys]() -> StatusOr<OpPtr> {
    MAGICDB_ASSIGN_OR_RETURN(OpPtr c, child_build());
    return OpPtr(
        std::make_unique<FilterProbeOp>(std::move(c), binding, keys));
  };
  return p;
}

// ----- Selectivity estimation -----

double Optimizer::Impl::ConjunctSelectivity(const ExprPtr& conjunct,
                                            const std::vector<double>& distinct,
                                            const TableStats* stats,
                                            double rows) const {
  if (!conjunct) return 1.0;
  const Expr* e = conjunct.get();
  switch (e->kind()) {
    case ExprKind::kComparison: {
      const auto* cmp = static_cast<const ComparisonExpr*>(e);
      const Expr* l = cmp->left().get();
      const Expr* r = cmp->right().get();
      // Normalize literal-to-the-right.
      CompareOp op = cmp->op();
      if (l->kind() == ExprKind::kLiteral &&
          r->kind() == ExprKind::kColumnRef) {
        std::swap(l, r);
        switch (op) {
          case CompareOp::kLt:
            op = CompareOp::kGt;
            break;
          case CompareOp::kLe:
            op = CompareOp::kGe;
            break;
          case CompareOp::kGt:
            op = CompareOp::kLt;
            break;
          case CompareOp::kGe:
            op = CompareOp::kLe;
            break;
          default:
            break;
        }
      }
      if (l->kind() == ExprKind::kColumnRef &&
          r->kind() == ExprKind::kLiteral) {
        const int col = static_cast<const ColumnRefExpr*>(l)->index();
        const Value& lit = static_cast<const LiteralExpr*>(r)->value();
        const ColumnStats* cs =
            (stats != nullptr && col < static_cast<int>(stats->columns.size()))
                ? &stats->columns[col]
                : nullptr;
        auto num = lit.AsNumeric();
        if (cs != nullptr && cs->numeric && !cs->histogram.empty() &&
            num.ok()) {
          switch (op) {
            case CompareOp::kEq:
              return std::clamp(cs->histogram.FractionEqual(*num), 0.0, 1.0);
            case CompareOp::kNe:
              return std::clamp(1.0 - cs->histogram.FractionEqual(*num), 0.0,
                                1.0);
            case CompareOp::kLt:
              return cs->histogram.FractionBelow(*num);
            case CompareOp::kLe:
              return std::clamp(cs->histogram.FractionBelow(*num) +
                                    cs->histogram.FractionEqual(*num),
                                0.0, 1.0);
            case CompareOp::kGt:
              return std::clamp(1.0 - cs->histogram.FractionBelow(*num) -
                                    cs->histogram.FractionEqual(*num),
                                0.0, 1.0);
            case CompareOp::kGe:
              return std::clamp(1.0 - cs->histogram.FractionBelow(*num), 0.0,
                                1.0);
          }
        }
        // No histogram: distinct-based equality, 1/3 ranges.
        const double d =
            col < static_cast<int>(distinct.size()) ? distinct[col] : rows;
        if (op == CompareOp::kEq) return 1.0 / std::max(1.0, d);
        if (op == CompareOp::kNe) return 1.0 - 1.0 / std::max(1.0, d);
        return 1.0 / 3.0;
      }
      if (l->kind() == ExprKind::kColumnRef &&
          r->kind() == ExprKind::kColumnRef) {
        const int cl = static_cast<const ColumnRefExpr*>(l)->index();
        const int cr = static_cast<const ColumnRefExpr*>(r)->index();
        const double dl =
            cl < static_cast<int>(distinct.size()) ? distinct[cl] : rows;
        const double dr =
            cr < static_cast<int>(distinct.size()) ? distinct[cr] : rows;
        if (op == CompareOp::kEq) return 1.0 / std::max({1.0, dl, dr});
        return 1.0 / 3.0;
      }
      return 1.0 / 3.0;
    }
    case ExprKind::kLogical: {
      const auto* logical = static_cast<const LogicalExpr*>(e);
      if (logical->op() == LogicalOp::kNot) {
        return std::clamp(
            1.0 - ConjunctSelectivity(logical->left(), distinct, stats, rows),
            0.0, 1.0);
      }
      const double sl =
          ConjunctSelectivity(logical->left(), distinct, stats, rows);
      const double sr =
          ConjunctSelectivity(logical->right(), distinct, stats, rows);
      if (logical->op() == LogicalOp::kAnd) return sl * sr;
      return std::clamp(sl + sr - sl * sr, 0.0, 1.0);
    }
    case ExprKind::kLiteral: {
      const auto* lit = static_cast<const LiteralExpr*>(e);
      if (lit->value().type() == DataType::kBool) {
        return lit->value().AsBool() ? 1.0 : 0.0;
      }
      return 1.0;
    }
    default:
      return 1.0 / 3.0;
  }
}

}  // namespace magicdb
