#ifndef MAGICDB_OPTIMIZER_JOIN_ORDER_BACKEND_H_
#define MAGICDB_OPTIMIZER_JOIN_ORDER_BACKEND_H_

// Pluggable join-order search. Every backend enumerates left-deep trees
// over the same JoinGraph and prices candidate steps with the same cost
// model (Optimizer::Impl::CostJoinStep), so a backend switch changes only
// how much of the plan space is explored — never how plans are costed or
// what they produce. Selected via OptimizerOptions::join_order_backend and
// folded into the options fingerprint, so plan caches never share plans
// across backends.

#include <string>
#include <vector>

#include "src/optimizer/optimizer_impl.h"

namespace magicdb {

class JoinOrderBackend {
 public:
  virtual ~JoinOrderBackend() = default;

  /// Registry key, e.g. "dp"; also surfaced in EXPLAIN output.
  virtual const char* name() const = 0;
  virtual const char* description() const = 0;

  /// Picks a complete join order for `graph`. `allow_filter_join` gates the
  /// Filter Join method exactly as in RunDP (MagicMode::kNever and the
  /// Starburst baseline plan without it). Returns InvalidArgument when no
  /// feasible complete plan exists (e.g. an unbound table function).
  virtual StatusOr<optimizer_internal::PartialPlan> Order(
      Optimizer::Impl* impl, const optimizer_internal::JoinGraph& graph,
      optimizer_internal::PlanContext* ctx, bool allow_filter_join) const = 0;
};

/// Looks up a registered backend by name; nullptr when unknown.
const JoinOrderBackend* FindJoinOrderBackend(const std::string& name);

/// Names of all registered backends, for diagnostics and option validation.
std::vector<std::string> JoinOrderBackendNames();

}  // namespace magicdb

#endif  // MAGICDB_OPTIMIZER_JOIN_ORDER_BACKEND_H_
