#include "src/bloom/bloom_filter.h"

#include <algorithm>
#include <cmath>

namespace magicdb {

BloomFilter::BloomFilter(int64_t num_bits, int num_hashes)
    : num_hashes_(std::clamp(num_hashes, 1, 16)) {
  const int64_t words = std::max<int64_t>(1, (num_bits + 63) / 64);
  words_.assign(static_cast<size_t>(words), 0);
}

BloomFilter BloomFilter::ForExpectedKeys(int64_t expected_keys, double fpr) {
  expected_keys = std::max<int64_t>(1, expected_keys);
  fpr = std::clamp(fpr, 1e-6, 0.5);
  // Optimal m = -n ln(p) / (ln 2)^2, k = (m/n) ln 2.
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(expected_keys) * std::log(fpr) /
                   (ln2 * ln2);
  const int k = std::max(1, static_cast<int>(std::round(m / expected_keys * ln2)));
  return BloomFilter(static_cast<int64_t>(std::ceil(m)), k);
}

uint64_t BloomFilter::ProbePosition(uint64_t hash, int i) const {
  // Kirsch-Mitzenmacher double hashing: g_i(x) = h1(x) + i*h2(x).
  const uint64_t h1 = hash;
  const uint64_t h2 = (hash >> 32) | (hash << 32) | 1;  // odd => full period
  return (h1 + static_cast<uint64_t>(i) * h2) %
         static_cast<uint64_t>(num_bits());
}

void BloomFilter::Add(uint64_t hash) {
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t pos = ProbePosition(hash, i);
    words_[pos / 64] |= (1ULL << (pos % 64));
  }
  ++keys_added_;
}

bool BloomFilter::MayContain(uint64_t hash) const {
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t pos = ProbePosition(hash, i);
    if ((words_[pos / 64] & (1ULL << (pos % 64))) == 0) return false;
  }
  return true;
}

double BloomFilter::EstimatedFalsePositiveRate() const {
  const double m = static_cast<double>(num_bits());
  const double k = static_cast<double>(num_hashes_);
  const double n = static_cast<double>(keys_added_);
  const double fill = 1.0 - std::exp(-k * n / m);
  return std::pow(fill, k);
}

}  // namespace magicdb
