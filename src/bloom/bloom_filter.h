#ifndef MAGICDB_BLOOM_BLOOM_FILTER_H_
#define MAGICDB_BLOOM_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

namespace magicdb {

/// Fixed-size Bloom filter over 64-bit hashes. The lossy filter-set
/// implementation of §3.3/§5.1: a compact superset of the exact filter set.
/// No false negatives; false-positive rate depends on bits-per-key.
class BloomFilter {
 public:
  /// `num_bits` is rounded up to a multiple of 64; at least 64.
  /// `num_hashes` in [1, 16].
  BloomFilter(int64_t num_bits, int num_hashes);

  /// Filter sized for ~`fpr` false positives over `expected_keys` keys.
  static BloomFilter ForExpectedKeys(int64_t expected_keys, double fpr);

  void Add(uint64_t hash);
  bool MayContain(uint64_t hash) const;

  int64_t num_bits() const { return static_cast<int64_t>(words_.size()) * 64; }
  int num_hashes() const { return num_hashes_; }
  int64_t keys_added() const { return keys_added_; }

  /// Size in bytes (what shipping the filter costs in the distributed
  /// model).
  int64_t SizeBytes() const { return static_cast<int64_t>(words_.size()) * 8; }

  /// Predicted false-positive rate for the keys added so far.
  double EstimatedFalsePositiveRate() const;

 private:
  /// i-th derived probe position via double hashing.
  uint64_t ProbePosition(uint64_t hash, int i) const;

  std::vector<uint64_t> words_;
  int num_hashes_;
  int64_t keys_added_ = 0;
};

}  // namespace magicdb

#endif  // MAGICDB_BLOOM_BLOOM_FILTER_H_
