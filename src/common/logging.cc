#include "src/common/logging.h"
#include <execinfo.h>

namespace magicdb {

namespace {
LogLevel g_log_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= static_cast<int>(g_log_level)) {
    std::cerr << stream_.str() << "\n";
  }
}

void FatalError(const char* file, int line, const std::string& message) {
  std::cerr << "[FATAL " << file << ":" << line << "] " << message
            << std::endl;
  // Dump a raw stack so fatal checks are diagnosable without a debugger
  // (symbolize offsets with addr2line against the binary).
  void* frames[64];
  const int n = backtrace(frames, 64);
  backtrace_symbols_fd(frames, n, 2);
  std::abort();
}

}  // namespace internal_logging
}  // namespace magicdb
