#ifndef MAGICDB_COMMON_LOGGING_H_
#define MAGICDB_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace magicdb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level actually emitted. Defaults to kWarning so tests
/// and benchmarks stay quiet; examples raise it for narration.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Logs and aborts; used by MAGICDB_CHECK failures.
[[noreturn]] void FatalError(const char* file, int line,
                             const std::string& message);

}  // namespace internal_logging
}  // namespace magicdb

#define MAGICDB_LOG(level)                                          \
  ::magicdb::internal_logging::LogMessage(::magicdb::LogLevel::level, \
                                          __FILE__, __LINE__)

/// Invariant check: always on (including release builds) because optimizer
/// and executor invariants guard correctness of query results.
#define MAGICDB_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::magicdb::internal_logging::FatalError(__FILE__, __LINE__,            \
                                              "Check failed: " #cond);       \
    }                                                                        \
  } while (0)

#define MAGICDB_CHECK_OK(expr)                                             \
  do {                                                                     \
    ::magicdb::Status _st = (expr);                                        \
    if (!_st.ok()) {                                                       \
      ::magicdb::internal_logging::FatalError(                             \
          __FILE__, __LINE__, "Check failed (status): " + _st.ToString()); \
    }                                                                      \
  } while (0)

#endif  // MAGICDB_COMMON_LOGGING_H_
