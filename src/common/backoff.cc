#include "src/common/backoff.h"

#include <cctype>
#include <cstdlib>

namespace magicdb {

namespace {
const char kRetryAfterKey[] = "retry_after_us=";
}  // namespace

std::string FormatRetryAfterHint(int64_t retry_after_us) {
  return kRetryAfterKey + std::to_string(retry_after_us);
}

int64_t ParseRetryAfterUs(const std::string& message) {
  const size_t pos = message.find(kRetryAfterKey);
  if (pos == std::string::npos) return -1;
  const size_t start = pos + sizeof(kRetryAfterKey) - 1;
  if (start >= message.size() ||
      !std::isdigit(static_cast<unsigned char>(message[start]))) {
    return -1;
  }
  return std::strtoll(message.c_str() + start, nullptr, 10);
}

}  // namespace magicdb
