#ifndef MAGICDB_COMMON_RANDOM_H_
#define MAGICDB_COMMON_RANDOM_H_

#include <cstdint>

namespace magicdb {

/// Deterministic 64-bit PRNG (splitmix64 seeding a xorshift128+ core).
/// Workload generators and property tests use this so that every run — on
/// any platform — sees identical data.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // splitmix64 expansion of the seed into two non-zero state words.
    state0_ = SplitMix(&seed);
    state1_ = SplitMix(&seed);
    if (state0_ == 0 && state1_ == 0) state1_ = 0x9e3779b97f4a7c15ULL;
  }

  /// Uniform over [0, 2^64).
  uint64_t NextUint64() {
    uint64_t s1 = state0_;
    const uint64_t s0 = state1_;
    const uint64_t result = s0 + s1;
    state0_ = s0;
    s1 ^= s1 << 23;
    state1_ = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
    return result;
  }

  /// Uniform over [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) { return NextUint64() % n; }

  /// Uniform over [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform over [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / (1ULL << 53));
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t state0_;
  uint64_t state1_;
};

}  // namespace magicdb

#endif  // MAGICDB_COMMON_RANDOM_H_
