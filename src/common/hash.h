#ifndef MAGICDB_COMMON_HASH_H_
#define MAGICDB_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace magicdb {

/// 64-bit FNV-1a over raw bytes. Used for hash joins, hash indexes and Bloom
/// filters; not cryptographic.
inline uint64_t HashBytes(const void* data, size_t len,
                          uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashUint64(uint64_t v, uint64_t seed = 0xcbf29ce484222325ULL) {
  return HashBytes(&v, sizeof(v), seed);
}

inline uint64_t HashString(std::string_view s,
                           uint64_t seed = 0xcbf29ce484222325ULL) {
  return HashBytes(s.data(), s.size(), seed);
}

/// Combines two hashes (boost-style mix).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace magicdb

#endif  // MAGICDB_COMMON_HASH_H_
