#ifndef MAGICDB_COMMON_BACKOFF_H_
#define MAGICDB_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "src/common/random.h"

namespace magicdb {

/// Capped exponential backoff with jitter, shared by every retry loop in
/// the serving layer (DDL-staleness replans, shed-and-retry under
/// overload). One instance covers one retry sequence; the caller supplies
/// the PRNG so jitter is deterministic under a fixed seed (sessions seed
/// theirs from the session id).
class Backoff {
 public:
  /// `initial_us` is the first delay before jitter; each NextDelayUs()
  /// doubles it up to `max_us`. Jitter adds up to half the current delay.
  Backoff(int64_t initial_us, int64_t max_us, Random* rng)
      : current_us_(std::max<int64_t>(1, initial_us)),
        max_us_(std::max<int64_t>(1, max_us)),
        rng_(rng) {}

  /// The next delay to sleep (current + jitter), advancing the sequence.
  int64_t NextDelayUs() {
    const int64_t jitter =
        rng_ != nullptr ? rng_->UniformInt(0, current_us_ / 2 + 1) : 0;
    const int64_t delay = current_us_ + jitter;
    current_us_ = std::min(current_us_ * 2, max_us_);
    return delay;
  }

  /// The delay the next NextDelayUs() call will start from (pre-jitter).
  int64_t current_us() const { return current_us_; }

 private:
  int64_t current_us_;
  const int64_t max_us_;
  Random* rng_;
};

/// Machine-readable retry hint carried in kUnavailable shed statuses:
/// "retry_after_us=<N>" embedded anywhere in the message. The wrapper
/// retry loop treats its presence as "this failure is retryable after a
/// backoff" — a plain kUnavailable (e.g. a draining service) carries no
/// hint and is surfaced immediately.
std::string FormatRetryAfterHint(int64_t retry_after_us);

/// Extracts the hint from a status message; returns -1 when absent or
/// malformed.
int64_t ParseRetryAfterUs(const std::string& message);

}  // namespace magicdb

#endif  // MAGICDB_COMMON_BACKOFF_H_
