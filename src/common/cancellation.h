#ifndef MAGICDB_COMMON_CANCELLATION_H_
#define MAGICDB_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "src/common/status.h"

namespace magicdb {

/// Cooperative cancellation token shared between a query's submitter and
/// every thread executing on its behalf. The executor never preempts:
/// long-running loops (morsel claims, page boundaries, the row pump) call
/// Check() and unwind with the returned non-OK Status, which the parallel
/// barriers' abort path then propagates to peer workers.
///
/// Thread-safe. Cancellation is sticky: once Check() has observed a
/// cancel/deadline, every later Check() returns the same code. A token is
/// single-use — make a fresh one per query.
class CancelToken {
 public:
  CancelToken() = default;

  /// Requests cancellation. Idempotent; a deadline that already fired wins
  /// (the first observed cause is the one reported).
  void Cancel() {
    int expected = kLive;
    state_.compare_exchange_strong(expected, kCancelled,
                                   std::memory_order_relaxed);
  }

  /// Cancellation variant fired by the stuck-query watchdog: same sticky
  /// kCancelled code, but the message attributes the kill to the watchdog
  /// so clients (and tests) can tell a stalled query from a client cancel.
  void CancelStalled() {
    int expected = kLive;
    state_.compare_exchange_strong(expected, kStalled,
                                   std::memory_order_relaxed);
  }

  /// Arms (or re-arms) an absolute deadline. Checked lazily by Check().
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Arms a deadline `timeout` from now. Non-positive timeouts expire
  /// immediately (useful for tests).
  void SetTimeout(std::chrono::nanoseconds timeout) {
    SetDeadline(std::chrono::steady_clock::now() + timeout);
  }

  /// OK while live; Cancelled / DeadlineExceeded once the token fired.
  /// Reads the clock only when a deadline is armed.
  Status Check() const {
    int state = state_.load(std::memory_order_relaxed);
    if (state == kLive) {
      const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
      if (deadline != kNoDeadline &&
          std::chrono::steady_clock::now().time_since_epoch().count() >=
              deadline) {
        int expected = kLive;
        state_.compare_exchange_strong(expected, kDeadline,
                                       std::memory_order_relaxed);
        state = state_.load(std::memory_order_relaxed);
      }
    }
    switch (state) {
      case kLive:
        return Status::OK();
      case kCancelled:
        return Status::Cancelled("query cancelled");
      case kStalled:
        return Status::Cancelled(
            "query cancelled by stuck-query watchdog: no execution progress "
            "within the stall timeout");
      default:
        return Status::DeadlineExceeded("query deadline exceeded");
    }
  }

  bool IsCancelled() const { return !Check().ok(); }

  /// Nanoseconds until the armed deadline (negative if already past);
  /// nullopt semantics via `has_deadline`.
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }
  std::chrono::steady_clock::time_point deadline() const {
    return std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(
            deadline_ns_.load(std::memory_order_relaxed)));
  }

 private:
  static constexpr int kLive = 0;
  static constexpr int kCancelled = 1;
  static constexpr int kDeadline = 2;
  static constexpr int kStalled = 3;
  static constexpr int64_t kNoDeadline =
      std::numeric_limits<int64_t>::max();

  mutable std::atomic<int> state_{kLive};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

using CancelTokenPtr = std::shared_ptr<CancelToken>;

}  // namespace magicdb

#endif  // MAGICDB_COMMON_CANCELLATION_H_
