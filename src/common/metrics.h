#ifndef MAGICDB_COMMON_METRICS_H_
#define MAGICDB_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace magicdb {

/// Monotonic atomic counter. Writers call Add/Increment from any thread;
/// Value() is a relaxed read (metrics tolerate slight staleness).
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Overwrites the value — for counters mirrored from an external source
  /// (e.g. the thread pool's steal count).
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram with exponential (powers-of-two) bucket
/// bounds: bucket i counts observations in [2^i, 2^(i+1)) units, bucket 0
/// additionally absorbs 0. With microsecond observations the range spans
/// 1us .. ~1.1h, which covers admission waits and query latencies.
///
/// Thread-safe: buckets, count and sum are relaxed atomics; a snapshot is
/// not an atomic cut across them, which is fine for monitoring.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 32;

  void Observe(int64_t value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const {
    const int64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }

  /// Estimated value at quantile `q` in [0, 1]: finds the bucket holding
  /// the q-th observation and interpolates linearly inside it. Exact to
  /// within one bucket's width (a factor of two).
  double Quantile(double q) const;

  /// Inclusive upper bound of bucket `i`.
  static int64_t BucketUpperBound(int i);

  std::array<int64_t, kNumBuckets> BucketCounts() const;

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Name -> metric registry. Registration happens once (typically at
/// subsystem construction) and returns stable pointers; the hot path then
/// touches only the atomic metric itself. Names follow the
/// `magicdb_<subsystem>_<what>_total` / `_us` convention used by the text
/// dump.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  Counter* counter(const std::string& name);

  /// Returns the histogram registered under `name`, creating it on first
  /// use.
  LatencyHistogram* histogram(const std::string& name);

  /// Point-in-time values of every registered counter (name -> value).
  std::map<std::string, int64_t> CounterValues() const;

  /// Human-readable dump of every metric, sorted by name: counters as
  /// `name value`, histograms as `name count=N sum=S p50=.. p95=.. p99=..`.
  std::string TextDump() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace magicdb

#endif  // MAGICDB_COMMON_METRICS_H_
