#include "src/common/metrics.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace magicdb {

namespace {

/// Index of the bucket covering `value`: floor(log2(value)) clamped to the
/// bucket range; 0 and 1 both land in bucket 0.
int BucketIndex(int64_t value) {
  if (value <= 1) return 0;
  int i = 0;
  uint64_t v = static_cast<uint64_t>(value);
  while (v > 1 && i < LatencyHistogram::kNumBuckets - 1) {
    v >>= 1;
    ++i;
  }
  return i;
}

}  // namespace

void LatencyHistogram::Observe(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

int64_t LatencyHistogram::BucketUpperBound(int i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << (i + 1)) - 1;
}

std::array<int64_t, LatencyHistogram::kNumBuckets>
LatencyHistogram::BucketCounts() const {
  std::array<int64_t, kNumBuckets> out{};
  for (int i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double LatencyHistogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const auto counts = BucketCounts();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  // Rank of the target observation (1-based), then walk buckets.
  const double rank = q * static_cast<double>(total);
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(seen + counts[i]) >= rank) {
      const double lower = i == 0 ? 0.0 : static_cast<double>(int64_t{1} << i);
      const double upper = i >= kNumBuckets - 1
                               ? lower * 2.0
                               : static_cast<double>(int64_t{1} << (i + 1));
      const double into = std::max(0.0, rank - static_cast<double>(seen));
      return lower +
             (upper - lower) * (into / static_cast<double>(counts[i]));
    }
    seen += counts[i];
  }
  return static_cast<double>(BucketUpperBound(kNumBuckets - 2));
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

std::map<std::string, int64_t> MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter->Value();
  }
  return out;
}

std::string MetricsRegistry::TextDump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  for (const auto& [name, counter] : counters_) {
    os << name << " " << counter->Value() << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    os << name << " count=" << hist->Count() << " sum=" << hist->Sum()
       << " p50=" << hist->Quantile(0.50) << " p95=" << hist->Quantile(0.95)
       << " p99=" << hist->Quantile(0.99) << "\n";
  }
  return os.str();
}

}  // namespace magicdb
