#ifndef MAGICDB_COMMON_MEMORY_TRACKER_H_
#define MAGICDB_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace magicdb {

/// Per-query memory governor. One tracker is shared (via shared_ptr) by every
/// worker of a query plus its result sink; operators charge the bytes they
/// retain (hash-table rows, spooled production tuples, partial-aggregate
/// groups, queued sink rows) and release them when the state is dropped.
///
/// Charging is advisory accounting, not an allocator hook: the charge is the
/// engine's own estimate (TupleByteWidth and friends), the same quantity the
/// cost model budgets against. A breach refunds the failed charge and returns
/// kResourceExhausted, so `used_bytes()` never exceeds the limit by more than
/// the in-flight charges of concurrent workers.
///
/// A limit <= 0 means unlimited: charges still maintain used/peak (cheap
/// relaxed atomics) but can never fail. Operators treat a null tracker
/// pointer as "no governance" and skip the calls entirely.
class MemoryTracker {
 public:
  explicit MemoryTracker(int64_t limit_bytes, std::string label = "query")
      : limit_bytes_(limit_bytes), label_(std::move(label)) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Accounts `bytes` against the limit. On breach the charge is rolled back
  /// and kResourceExhausted is returned; the caller must abandon the
  /// allocation it was about to retain.
  Status Charge(int64_t bytes) {
    if (bytes <= 0) return Status::OK();
    const int64_t now =
        used_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limit_bytes_ > 0 && now > limit_bytes_) {
      used_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          label_ + " memory limit exceeded: need " + std::to_string(now) +
          " bytes, limit " + std::to_string(limit_bytes_) + " bytes");
    }
    const int64_t consumed =
        consumed_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Lock-free max update; racing peaks converge to the true maximum.
    int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (consumed > peak && !peak_bytes_.compare_exchange_weak(
                                  peak, consumed, std::memory_order_relaxed)) {
    }
    return Status::OK();
  }

  /// Returns previously charged bytes. Never fails.
  void Release(int64_t bytes) {
    if (bytes <= 0) return;
    used_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    consumed_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Sets aside `bytes` of headroom against the limit without recording any
  /// consumption: the reservation can fail exactly like Charge, but it never
  /// moves the peak. The batch execution path reserves a chunk at a time and
  /// commits per-row out of it, keeping peak_bytes() a tight high-water mark
  /// of retained state (a rerun with the limit set to the observed peak must
  /// succeed; one byte less must fail) regardless of reservation size.
  Status Reserve(int64_t bytes) {
    if (bytes <= 0) return Status::OK();
    const int64_t now =
        used_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limit_bytes_ > 0 && now > limit_bytes_) {
      used_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          label_ + " memory limit exceeded: need " + std::to_string(now) +
          " bytes, limit " + std::to_string(limit_bytes_) + " bytes");
    }
    return Status::OK();
  }

  /// Converts `bytes` of a prior Reserve into real consumption: updates the
  /// peak, leaves used_bytes() unchanged (the bytes were already accounted
  /// at Reserve time). Release the committed bytes with Release().
  void CommitReserved(int64_t bytes) {
    if (bytes <= 0) return;
    const int64_t now =
        consumed_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (now > peak && !peak_bytes_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  /// Refunds reserved-but-uncommitted headroom.
  void ReleaseReserved(int64_t bytes) {
    if (bytes <= 0) return;
    used_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t used_bytes() const {
    return used_bytes_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  int64_t limit_bytes() const { return limit_bytes_; }

 private:
  const int64_t limit_bytes_;
  const std::string label_;
  /// Accounted against the limit: committed consumption plus outstanding
  /// reservations.
  std::atomic<int64_t> used_bytes_{0};
  /// Committed consumption only; feeds the peak. Equal to used_bytes_ when
  /// no reservations are outstanding.
  std::atomic<int64_t> consumed_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
};

}  // namespace magicdb

#endif  // MAGICDB_COMMON_MEMORY_TRACKER_H_
