#ifndef MAGICDB_COMMON_STATUSOR_H_
#define MAGICDB_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace magicdb {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// is absent. Mirrors absl::StatusOr in spirit; accessors assert on misuse.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (the common success path).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  /// Implicit construction from an error Status. Constructing from an OK
  /// status is a programming error.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace magicdb

#endif  // MAGICDB_COMMON_STATUSOR_H_
