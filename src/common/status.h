#ifndef MAGICDB_COMMON_STATUS_H_
#define MAGICDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace magicdb {

/// Error categories used across the engine. Kept deliberately small; the
/// message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kBindError,
  kTypeError,
  kCancelled,
  kDeadlineExceeded,
  kUnavailable,
  kFailedPrecondition,
  kResourceExhausted,
  /// Not an error in the usual sense: a pipeline breaker observed a
  /// cardinality far enough from its estimate that the driver should abort
  /// this execution attempt, fold the observation into a stats overlay, and
  /// re-plan the query (see DESIGN.md "Adaptive re-optimization").
  kReoptimizeRequested,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument",
/// ...).
const char* StatusCodeName(StatusCode code);

/// Value-semantic error carrier. The engine does not use exceptions; every
/// fallible operation returns a Status (or StatusOr<T>). An OK status carries
/// no message and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ReoptimizeRequested(std::string msg) {
    return Status(StatusCode::kReoptimizeRequested, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsReoptimizeRequested() const {
    return code_ == StatusCode::kReoptimizeRequested;
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace magicdb

/// Propagates a non-OK Status to the caller. Usable in any function that
/// returns Status.
#define MAGICDB_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::magicdb::Status _status = (expr);               \
    if (!_status.ok()) return _status;                \
  } while (0)

/// Evaluates a StatusOr expression; on error propagates the Status, otherwise
/// move-assigns the value into `lhs`. `lhs` may be a declaration.
#define MAGICDB_ASSIGN_OR_RETURN(lhs, expr)                       \
  MAGICDB_ASSIGN_OR_RETURN_IMPL_(                                 \
      MAGICDB_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define MAGICDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

#define MAGICDB_STATUS_CONCAT_(a, b) MAGICDB_STATUS_CONCAT_IMPL_(a, b)
#define MAGICDB_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // MAGICDB_COMMON_STATUS_H_
