#include "src/common/failpoint.h"

#ifdef MAGICDB_FAILPOINTS

#include <chrono>
#include <cstdlib>
#include <thread>

namespace magicdb {

Status Failpoint::Evaluate() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (!armed_.load(std::memory_order_acquire)) return Status::OK();

  Status injected;
  int64_t delay_micros = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // armed_ may have been cleared between the fast-path check and taking
    // the lock; Disable holds mu_, so re-check under it.
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();

    eligible_hits_++;
    if (config_.fire_from_hit > 0 && eligible_hits_ < config_.fire_from_hit) {
      return Status::OK();
    }
    if (config_.every_k > 1) {
      const int64_t since_first =
          eligible_hits_ - (config_.fire_from_hit > 0 ? config_.fire_from_hit
                                                      : 1);
      if (since_first % config_.every_k != 0) return Status::OK();
    }
    if (config_.max_fires >= 0 && fires_this_arm_ >= config_.max_fires) {
      return Status::OK();
    }
    if (config_.probability < 1.0) {
      if (!rng_ || !rng_->Bernoulli(config_.probability)) return Status::OK();
    }
    fires_this_arm_++;
    injected = config_.inject;
    delay_micros = config_.delay_micros;
  }
  fires_.fetch_add(1, std::memory_order_relaxed);
  if (delay_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));
  }
  return injected;
}

void Failpoint::Enable(const FailpointConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  eligible_hits_ = 0;
  fires_this_arm_ = 0;
  rng_ = config.probability < 1.0 ? std::make_unique<Random>(config.seed)
                                  : nullptr;
  armed_.store(true, std::memory_order_release);
}

void Failpoint::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  rng_.reset();
}

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* const registry = []() {
    auto* r = new FailpointRegistry();
    r->ArmFromEnv();
    return r;
  }();
  return *registry;
}

void FailpointRegistry::ArmFromEnv() {
  const char* spec = std::getenv("MAGICDB_FAILPOINT_DELAYS");
  if (spec == nullptr || *spec == '\0') return;
  const std::string s(spec);
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find(',', start);
    if (end == std::string::npos) end = s.size();
    const std::string entry = s.substr(start, end - start);
    const size_t colon = entry.rfind(':');
    if (colon != std::string::npos && colon > 0) {
      FailpointConfig config;  // OK inject = delay-only
      config.delay_micros =
          std::strtoll(entry.c_str() + colon + 1, nullptr, 10);
      if (config.delay_micros > 0) Enable(entry.substr(0, colon), config);
    }
    start = end + 1;
  }
}

Failpoint* FailpointRegistry::Site(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sites_[name];
  if (!slot) slot = std::make_unique<Failpoint>(name);
  return slot.get();
}

void FailpointRegistry::Enable(const std::string& name,
                               const FailpointConfig& config) {
  Site(name)->Enable(config);
}

void FailpointRegistry::Disable(const std::string& name) {
  Site(name)->Disable();
}

void FailpointRegistry::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) site->Disable();
}

std::vector<std::string> FailpointRegistry::SiteNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, site] : sites_) names.push_back(name);
  return names;
}

int64_t FailpointRegistry::TotalFires() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [name, site] : sites_) total += site->fires();
  return total;
}

std::string FailpointRegistry::MetricsText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, site] : sites_) {
    out += "magicdb_failpoint_fires_total{site=\"";
    out += name;
    out += "\"} ";
    out += std::to_string(site->fires());
    out += "\n";
  }
  return out;
}

}  // namespace magicdb

#endif  // MAGICDB_FAILPOINTS
