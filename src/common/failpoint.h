#ifndef MAGICDB_COMMON_FAILPOINT_H_
#define MAGICDB_COMMON_FAILPOINT_H_

/// Named failpoints for fault injection in tests.
///
/// A failpoint is a named site in production code where a test can arrange
/// for an error Status or a delay to be injected. Sites are declared with the
/// MAGICDB_FAILPOINT family of macros; the whole subsystem is compiled in
/// only when MAGICDB_FAILPOINTS is defined (CMake option of the same name).
/// In the default build every macro expands to a no-op that carries no
/// registry symbol and no branch on the hot path.
///
/// Site naming convention: `<layer>.<component>.<event>`, e.g.
/// `exec.hash_join.build` or `server.sink.push`. Sites self-register on
/// first execution; `FailpointRegistry::SiteNames()` lists everything the
/// current process has run through at least once.
///
/// Triggers are deterministic: fire on the Nth eligible hit, fire every Kth
/// hit, or fire with probability p from a seeded PRNG; `max_fires` bounds the
/// total. Tests activate a site with `ScopedFailpoint` so that the site is
/// always disarmed on scope exit, even when the test fails.
///
/// The environment variable MAGICDB_FAILPOINT_DELAYS ("site:micros,...")
/// arms the named sites as delay-only (OK status, injected latency) at
/// registry creation, so an entire test binary can run with perturbed
/// timing at chosen sites without per-test arming.

#include "src/common/status.h"

#ifdef MAGICDB_FAILPOINTS

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/random.h"

namespace magicdb {

/// What an armed failpoint does when its trigger matches.
struct FailpointConfig {
  /// Fire on the Nth eligible hit (1-based). 0 disables this trigger, i.e.
  /// every hit is eligible from the start.
  int64_t fire_from_hit = 1;
  /// After becoming eligible, fire on every Kth hit (1 = every hit).
  int64_t every_k = 1;
  /// Additional probabilistic gate in [0, 1]; 1.0 = always (deterministic).
  double probability = 1.0;
  /// Seed for the probabilistic gate's PRNG (ignored when probability >= 1).
  uint64_t seed = 42;
  /// Maximum number of times the site may fire while armed; -1 = unlimited.
  int64_t max_fires = -1;
  /// Status returned from the site when the trigger fires. An OK status
  /// means "delay only": the site sleeps but does not fail.
  Status inject;
  /// Simulated latency applied (outside all locks) on every fire.
  int64_t delay_micros = 0;
};

/// One named site. Sites are created once and never destroyed; pointers
/// returned by FailpointRegistry::Site are stable for the process lifetime.
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  /// Called from the production site. Returns OK unless the site is armed
  /// and the trigger matches, in which case the configured Status is
  /// returned (after any configured delay).
  Status Evaluate();

  void Enable(const FailpointConfig& config);
  void Disable();

  const std::string& name() const { return name_; }
  /// Total times the site was executed (armed or not).
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Total times the site fired (injected a fault or delay).
  int64_t fires() const { return fires_.load(std::memory_order_relaxed); }

 private:
  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> fires_{0};

  std::mutex mu_;
  FailpointConfig config_;            // guarded by mu_
  int64_t eligible_hits_ = 0;         // hits seen while armed; guarded by mu_
  int64_t fires_this_arm_ = 0;        // guarded by mu_
  std::unique_ptr<Random> rng_;       // guarded by mu_
};

/// Process-wide registry of failpoint sites, keyed by name.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  /// Find-or-create the site. The returned pointer is stable forever, so
  /// call sites cache it in a function-local static.
  Failpoint* Site(const std::string& name);

  /// Arms `name` with `config`; creates the site if no code path has
  /// executed it yet.
  void Enable(const std::string& name, const FailpointConfig& config);
  void Disable(const std::string& name);
  void DisableAll();

  std::vector<std::string> SiteNames() const;
  int64_t TotalFires() const;

  /// Prometheus-style `magicdb_failpoint_fires_total{site="..."} N` lines
  /// for every registered site, sorted by name.
  std::string MetricsText() const;

 private:
  FailpointRegistry() = default;

  /// Parses MAGICDB_FAILPOINT_DELAYS and arms each listed site delay-only.
  void ArmFromEnv();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Failpoint>> sites_;
};

/// RAII site activation for tests: arms in the constructor, disarms in the
/// destructor.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, const FailpointConfig& config)
      : name_(std::move(name)) {
    FailpointRegistry::Instance().Enable(name_, config);
  }
  ~ScopedFailpoint() { FailpointRegistry::Instance().Disable(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace magicdb

/// Evaluates the site and yields the (possibly injected) Status. Use when
/// the caller wants to route the Status somewhere other than `return`.
#define MAGICDB_FAILPOINT_EVAL(site)                         \
  ([]() -> ::magicdb::Status {                               \
    static ::magicdb::Failpoint* const _magicdb_fp =         \
        ::magicdb::FailpointRegistry::Instance().Site(site); \
    return _magicdb_fp->Evaluate();                          \
  }())

/// Evaluates the site and returns the injected Status from the enclosing
/// function when it fires. The enclosing function must return Status.
#define MAGICDB_FAILPOINT(site)                                  \
  do {                                                           \
    ::magicdb::Status _magicdb_fp_status =                       \
        MAGICDB_FAILPOINT_EVAL(site);                            \
    if (!_magicdb_fp_status.ok()) return _magicdb_fp_status;     \
  } while (0)

/// Evaluates the site (counting hits and applying any configured delay) but
/// discards the Status. For void contexts where only timing perturbation is
/// meaningful, e.g. the sink park/resume handoff.
#define MAGICDB_FAILPOINT_HIT(site)            \
  do {                                         \
    (void)MAGICDB_FAILPOINT_EVAL(site);        \
  } while (0)

#else  // !MAGICDB_FAILPOINTS

#define MAGICDB_FAILPOINT_EVAL(site) (::magicdb::Status())
#define MAGICDB_FAILPOINT(site) \
  do {                          \
  } while (0)
#define MAGICDB_FAILPOINT_HIT(site) \
  do {                              \
  } while (0)

#endif  // MAGICDB_FAILPOINTS

#endif  // MAGICDB_COMMON_FAILPOINT_H_
