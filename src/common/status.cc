#include "src/common/status.h"

namespace magicdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kReoptimizeRequested:
      return "ReoptimizeRequested";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace magicdb
