#include "src/common/cost_counters.h"

#include <sstream>

namespace magicdb {

std::string CostCounters::ToString() const {
  std::ostringstream os;
  os << "{pages_read=" << pages_read << " pages_written=" << pages_written
     << " tuples=" << tuples_processed << " exprs=" << exprs_evaluated
     << " hashes=" << hash_operations << " msgs=" << messages_sent
     << " bytes=" << bytes_shipped << " fn_calls=" << function_invocations
     << " total_cost=" << TotalCost() << "}";
  return os.str();
}

}  // namespace magicdb
