#include "src/common/cost_counters.h"

#include <sstream>

#include "src/common/logging.h"

namespace magicdb {

void CostCounters::AssertNonNegative() const {
  MAGICDB_CHECK(pages_read >= 0);
  MAGICDB_CHECK(pages_written >= 0);
  MAGICDB_CHECK(tuples_processed >= 0);
  MAGICDB_CHECK(exprs_evaluated >= 0);
  MAGICDB_CHECK(hash_operations >= 0);
  MAGICDB_CHECK(messages_sent >= 0);
  MAGICDB_CHECK(bytes_shipped >= 0);
  MAGICDB_CHECK(function_invocations >= 0);
  MAGICDB_CHECK(spill_bytes_written >= 0);
  MAGICDB_CHECK(spill_bytes_read >= 0);
}

std::string CostCounters::ToString() const {
  std::ostringstream os;
  os << "{pages_read=" << pages_read << " pages_written=" << pages_written
     << " tuples=" << tuples_processed << " exprs=" << exprs_evaluated
     << " hashes=" << hash_operations << " msgs=" << messages_sent
     << " bytes=" << bytes_shipped << " fn_calls=" << function_invocations;
  if (spill_bytes_written > 0 || spill_bytes_read > 0) {
    os << " spill_written=" << spill_bytes_written
       << " spill_read=" << spill_bytes_read;
  }
  os << " total_cost=" << TotalCost() << "}";
  return os.str();
}

}  // namespace magicdb
