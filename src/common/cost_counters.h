#ifndef MAGICDB_COMMON_COST_COUNTERS_H_
#define MAGICDB_COMMON_COST_COUNTERS_H_

#include <cstdint>
#include <string>

namespace magicdb {

/// Unit cost constants shared by the cost model (prediction) and the
/// executor (measurement). The unit of cost is one page I/O; CPU and
/// communication work are weighted into the same unit, System-R style.
struct CostConstants {
  /// Bytes per storage page.
  static constexpr int64_t kPageSizeBytes = 4096;
  /// Cost of touching one tuple on the CPU, in page-I/O units.
  static constexpr double kCpuTupleCost = 0.01;
  /// Extra CPU cost of evaluating one predicate/expression on a tuple.
  static constexpr double kCpuExprCost = 0.002;
  /// Cost of one hash-table insert or probe.
  static constexpr double kCpuHashCost = 0.005;
  /// Fixed cost of one network message, in page-I/O units.
  static constexpr double kMessageCost = 2.0;
  /// Cost of shipping one byte across sites.
  static constexpr double kBytePerCost = 1.0 / kPageSizeBytes;
  /// Cost of invoking a user-defined table function once.
  static constexpr double kFunctionInvokeCost = 5.0;
  /// Partitions per recursive Grace-partitioning level, shared by the spill
  /// subsystem (actual partitioning) and the cost model (predicted passes).
  static constexpr int kSpillFanout = 8;
};

/// Pages occupied by `rows` tuples of `width_bytes` each, under the
/// rows-per-page packing convention shared by storage, executor and cost
/// model: rpp = max(1, page/width); pages = ceil(rows / rpp). Using one
/// helper everywhere keeps predicted and measured page counts identical.
inline int64_t PagesForRows(int64_t rows, int64_t width_bytes) {
  if (rows <= 0) return 0;
  if (width_bytes <= 0) width_bytes = 1;
  const int64_t rows_per_page =
      CostConstants::kPageSizeBytes / width_bytes > 0
          ? CostConstants::kPageSizeBytes / width_bytes
          : 1;
  return (rows + rows_per_page - 1) / rows_per_page;
}

/// Rows that fit on one page for tuples of `width_bytes`.
inline int64_t RowsPerPage(int64_t width_bytes) {
  if (width_bytes <= 0) width_bytes = 1;
  const int64_t rpp = CostConstants::kPageSizeBytes / width_bytes;
  return rpp > 0 ? rpp : 1;
}

/// Grace partitioning passes needed to shrink `bytes` of hashed state under
/// `budget_bytes` with fanout-way splits: 0 when it already fits, else the
/// number of full write+read passes over the data. Shared by the cost model
/// (prediction), the executors' budget heuristics (measurement), and the
/// spill subsystem's recursion (actual passes) — one formula keeps all
/// three consistent.
inline int64_t SpillPasses(double bytes, double budget_bytes,
                           int fanout = CostConstants::kSpillFanout) {
  if (bytes <= 0) return 0;
  if (budget_bytes <= 0) return 1;
  if (bytes <= budget_bytes) return 0;
  int64_t passes = 1;
  double per_partition = bytes / fanout;
  while (per_partition > budget_bytes && passes < 16) {
    ++passes;
    per_partition /= fanout;
  }
  return passes;
}

/// Accumulates the work an execution actually performed, in the same units
/// the optimizer predicts. Experiment E3 (Table 1) compares the two
/// directly. One counter instance is threaded through an execution context.
///
/// Threading contract: a CostCounters instance is SINGLE-WRITER. Counters
/// are plain int64_t fields, deliberately not atomics — the parallel
/// executor gives every worker a private ExecContext (and thus a private
/// instance) and merges them with operator+= at pipeline close, after all
/// workers have finished. Sharing one instance between concurrently
/// charging threads is a data race; the charging protocol (each unit of
/// work charged by exactly one worker) is what makes the merged totals
/// equal a single-threaded execution's, not synchronization.
struct CostCounters {
  int64_t pages_read = 0;
  int64_t pages_written = 0;
  int64_t tuples_processed = 0;
  int64_t exprs_evaluated = 0;
  int64_t hash_operations = 0;
  int64_t messages_sent = 0;
  int64_t bytes_shipped = 0;
  int64_t function_invocations = 0;
  /// Bytes actually written to / read from spill files by this execution.
  /// Informational: the page-I/O cost of spilling is already charged into
  /// pages_written / pages_read, so these do not enter TotalCost(); they
  /// exist so the server can tell spilled queries apart from in-memory ones.
  int64_t spill_bytes_written = 0;
  int64_t spill_bytes_read = 0;

  void Reset() { *this = CostCounters(); }

  /// Total cost in page-I/O units under the shared constants.
  double TotalCost() const {
    return static_cast<double>(pages_read + pages_written) +
           CostConstants::kCpuTupleCost * tuples_processed +
           CostConstants::kCpuExprCost * exprs_evaluated +
           CostConstants::kCpuHashCost * hash_operations +
           CostConstants::kMessageCost * messages_sent +
           CostConstants::kBytePerCost * bytes_shipped +
           CostConstants::kFunctionInvokeCost * function_invocations;
  }

  CostCounters& operator+=(const CostCounters& o) {
    pages_read += o.pages_read;
    pages_written += o.pages_written;
    tuples_processed += o.tuples_processed;
    exprs_evaluated += o.exprs_evaluated;
    hash_operations += o.hash_operations;
    messages_sent += o.messages_sent;
    bytes_shipped += o.bytes_shipped;
    function_invocations += o.function_invocations;
    spill_bytes_written += o.spill_bytes_written;
    spill_bytes_read += o.spill_bytes_read;
    return *this;
  }

  /// Per-counter difference (this - other); used to attribute cost to a
  /// plan phase by snapshotting before and after.
  CostCounters Delta(const CostCounters& before) const {
    CostCounters d;
    d.pages_read = pages_read - before.pages_read;
    d.pages_written = pages_written - before.pages_written;
    d.tuples_processed = tuples_processed - before.tuples_processed;
    d.exprs_evaluated = exprs_evaluated - before.exprs_evaluated;
    d.hash_operations = hash_operations - before.hash_operations;
    d.messages_sent = messages_sent - before.messages_sent;
    d.bytes_shipped = bytes_shipped - before.bytes_shipped;
    d.function_invocations = function_invocations - before.function_invocations;
    d.spill_bytes_written = spill_bytes_written - before.spill_bytes_written;
    d.spill_bytes_read = spill_bytes_read - before.spill_bytes_read;
    return d;
  }

  std::string ToString() const;

  /// Fails (MAGICDB_CHECK) if any counter is negative — the counter-merge
  /// path calls this on every worker's counters before summing, so a
  /// mis-attributed "refund" (a bug class the exactly-once charging
  /// protocol can otherwise hide inside a sum) is caught at the merge.
  void AssertNonNegative() const;
};

}  // namespace magicdb

#endif  // MAGICDB_COMMON_COST_COUNTERS_H_
