#ifndef MAGICDB_PARALLEL_MORSEL_H_
#define MAGICDB_PARALLEL_MORSEL_H_

#include <atomic>
#include <cstdint>

namespace magicdb {

/// A fixed-size run of consecutive row positions [begin, end) of one input
/// relation — the unit of work distribution in morsel-driven execution.
struct Morsel {
  int64_t index = 0;  // 0-based position of this morsel in the input
  int64_t begin = 0;  // first row (inclusive)
  int64_t end = 0;    // last row (exclusive)
};

/// Carves [0, num_rows) into page-aligned morsels and hands them out to
/// workers through an atomic cursor. Page alignment is load-bearing for
/// cost accounting: every morsel except the last spans whole storage pages,
/// so the per-row "charge one page read at each page boundary" rule used by
/// the scans sums to exactly the same page count at any degree of
/// parallelism as a single sequential scan.
///
/// Thread-safe: any number of workers may call Next concurrently. Claimed
/// morsel indexes are monotonically increasing, so the morsels one worker
/// receives are always in ascending row order — the property the gather
/// merge relies on for deterministic output.
class MorselSource {
 public:
  /// Morsels cover [0, num_rows); the morsel size is `target_rows` rounded
  /// up to the next multiple of `rows_per_page` (minimum one page).
  MorselSource(int64_t num_rows, int64_t rows_per_page,
               int64_t target_rows = kDefaultMorselRows);

  /// Claims the next unclaimed morsel. Returns false at end of input.
  bool Next(Morsel* morsel);

  int64_t num_rows() const { return num_rows_; }
  int64_t morsel_rows() const { return morsel_rows_; }
  int64_t NumMorsels() const { return num_morsels_; }

  /// Rewinds the cursor. Only safe when no worker is mid-claim (tests and
  /// re-execution setup; never during a running pipeline).
  void Reset() { next_.store(0, std::memory_order_relaxed); }

  static constexpr int64_t kDefaultMorselRows = 4096;

 private:
  int64_t num_rows_;
  int64_t morsel_rows_;
  int64_t num_morsels_;
  std::atomic<int64_t> next_{0};
};

}  // namespace magicdb

#endif  // MAGICDB_PARALLEL_MORSEL_H_
