#ifndef MAGICDB_PARALLEL_PARTITIONED_AGGREGATE_H_
#define MAGICDB_PARALLEL_PARTITIONED_AGGREGATE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/exec/agg_state.h"
#include "src/parallel/partitioned_build.h"
#include "src/types/tuple.h"

namespace magicdb {

class ExecContext;

/// One partial aggregation group staged into the partitioned parallel
/// merge, remembering where its first input row sat in the sequential
/// input order of the aggregation:
///
///   `pos` is the global driving-scan position of the group's first input
///   row; `sub` disambiguates several aggregation input rows produced from
///   the same driving position (a Filter Join can emit more than one probe
///   match per production row). The pair (pos, sub) is the row's rank in
///   the exact sequential input order, so the group whose (pos, sub) is
///   minimal after the merge is the group a single-threaded aggregation
///   would have created first — first-seen output order is reconstructed
///   by sorting on it.
struct StagedGroup {
  int64_t pos = 0;
  int64_t sub = 0;
  uint64_t hash = 0;  // group-key hash (partition router + bucket key)
  Tuple key;
  std::vector<AggState> states;
};

/// Shared state of one two-phase parallel hash aggregation
/// (HashAggregateOp::EnableParallel). Protocol, executed identically by all
/// `num_workers` pipeline replicas:
///
///   1. each worker drains its (morsel-driven) slice of the aggregation
///      input into a private, morsel-local partial hash table — no shared
///      writes, no locks on the accumulate path;
///   2. Stage(): every partial group is routed by key hash into the
///      partition it belongs to (per-(worker, partition) buffers, so
///      staging is contention-free too);
///   3. MergeOwnPartition(): barrier; then each worker merges the one
///      partition it owns — partial groups are sorted by first-seen input
///      rank (pos, sub) and equal keys are combined in that order, so the
///      merged partition lists its groups in exactly the sequential
///      first-seen order. Partitions are disjoint key ranges, so the merge
///      itself runs fully parallel — there is no sequential merge
///      bottleneck. Worker 0 additionally settles the Grace-style
///      partitioning charge once from the global input byte total.
///
/// After MergeOwnPartition returns, each worker owns the merged groups of
/// its partition exclusively and emits them itself; the gather merge on
/// (pos, sub) interleaves the per-worker runs back into the sequential
/// first-seen order.
///
/// Counter discipline: accumulate work (key evals, agg-arg evals, hash
/// ops) is charged by the worker that consumed each input row — every row
/// is consumed exactly once across workers. The merge charges nothing
/// (sequential execution has no merge phase), and each merged group's
/// output charge is paid by its partition owner at emission — every group
/// is emitted exactly once. Merged counters therefore equal a
/// single-threaded aggregation's exactly.
class SharedAggregate {
 public:
  SharedAggregate(int num_workers, int64_t memory_budget_bytes);

  int num_workers() const { return num_workers_; }

  /// Phase 2: stage one partial group (thread-safe; workers stage into
  /// per-(worker, partition) buffers).
  void Stage(int worker, StagedGroup group);

  /// Accumulates this worker's share of the global aggregation input size
  /// (Grace partitioning-pass accounting). Call before MergeOwnPartition.
  void AddInputBytes(int64_t bytes);

  /// Phase 3: barrier with the other workers, then merge the partition
  /// `worker` owns into `*merged` — sorted by (pos, sub), equal keys
  /// combined in that order. Worker 0 charges `ctx` the partitioning pass
  /// if the global input exceeded the memory budget.
  Status MergeOwnPartition(int worker, ExecContext* ctx,
                           std::vector<StagedGroup>* merged);

  /// Releases every barrier waiter with `status` (worker failure path).
  void Abort(Status status);

 private:
  const int num_workers_;
  const int64_t memory_budget_bytes_;
  // staging_[worker][partition]: partial groups routed by key hash.
  std::vector<std::vector<std::vector<StagedGroup>>> staging_;
  std::atomic<int64_t> total_input_bytes_{0};
  CancellableBarrier staged_barrier_;
};

}  // namespace magicdb

#endif  // MAGICDB_PARALLEL_PARTITIONED_AGGREGATE_H_
