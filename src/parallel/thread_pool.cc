#include "src/parallel/thread_pool.h"

#include <chrono>

#include "src/common/logging.h"

namespace magicdb {

ThreadPool::ThreadPool(int num_threads) : num_workers_(num_threads) {
  MAGICDB_CHECK(num_threads >= 1);
  queues_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  const int target = static_cast<int>(
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size());
  SubmitTo(target, std::move(task));
}

void ThreadPool::SubmitTo(int worker, std::function<void()> task) {
  MAGICDB_CHECK(worker >= 0 && worker < size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ += 1;
  }
  {
    std::lock_guard<std::mutex> lock(queues_[worker]->mu);
    queues_[worker]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_all();
}

bool ThreadPool::TryRunOneTask(int id) {
  std::function<void()> task;
  // Own deque first, newest task (LIFO).
  {
    std::lock_guard<std::mutex> lock(queues_[id]->mu);
    if (!queues_[id]->tasks.empty()) {
      task = std::move(queues_[id]->tasks.back());
      queues_[id]->tasks.pop_back();
    }
  }
  // Then steal the oldest task (FIFO) from a victim, scanning from the next
  // worker around the ring so steals spread instead of piling on worker 0.
  if (!task) {
    const int n = size();
    for (int k = 1; k < n && !task; ++k) {
      WorkerQueue& victim = *queues_[(id + k) % n];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!task) return false;
  task();
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ -= 1;
    if (pending_ == 0) idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop(int id) {
  while (true) {
    if (TryRunOneTask(id)) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    // Re-check for work under the wakeup lock to close the race between the
    // empty-deque observation and going to sleep.
    wake_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::vector<Status> ThreadPool::RunGang(int n,
                                        const std::function<Status(int)>& fn) {
  MAGICDB_CHECK(n >= 1);
  std::vector<Status> results(n, Status::OK());
  std::mutex done_mu;
  std::condition_variable done_cv;
  int done = 0;
  for (int i = 0; i < n; ++i) {
    Submit([&, i] {
      Status s = fn(i);
      std::lock_guard<std::mutex> lock(done_mu);
      results[i] = std::move(s);
      done += 1;
      done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == n; });
  return results;
}

std::vector<Status> ThreadPool::RunOnAllWorkers(
    const std::function<Status(int)>& fn) {
  const int n = size();
  std::vector<Status> results(n, Status::OK());
  std::mutex done_mu;
  std::condition_variable done_cv;
  int done = 0;
  for (int i = 0; i < n; ++i) {
    SubmitTo(i, [&, i] {
      Status s = fn(i);
      std::lock_guard<std::mutex> lock(done_mu);
      results[i] = std::move(s);
      done += 1;
      done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == n; });
  return results;
}

}  // namespace magicdb
