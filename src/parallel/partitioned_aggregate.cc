#include "src/parallel/partitioned_aggregate.h"

#include <algorithm>
#include <utility>

#include "src/common/cost_counters.h"
#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/exec/exec_context.h"

namespace magicdb {

SharedAggregate::SharedAggregate(int num_workers, int64_t memory_budget_bytes)
    : num_workers_(num_workers),
      memory_budget_bytes_(memory_budget_bytes),
      staging_(num_workers),
      staged_barrier_(num_workers) {
  for (auto& per_worker : staging_) per_worker.resize(num_workers);
}

void SharedAggregate::Stage(int worker, StagedGroup group) {
  const int partition = static_cast<int>(group.hash % num_workers_);
  staging_[worker][partition].push_back(std::move(group));
}

void SharedAggregate::AddInputBytes(int64_t bytes) {
  total_input_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

Status SharedAggregate::MergeOwnPartition(int worker, ExecContext* ctx,
                                          std::vector<StagedGroup>* merged) {
  // Injected merge fault fires before the barrier: the failing worker
  // unwinds through worker_fn's abort path, which aborts every barrier and
  // releases the peers — arriving first and then failing would strand them.
  MAGICDB_FAILPOINT("parallel.aggregate.merge");
  // All staging writes happen-before the barrier; afterwards partition
  // `worker` is read by this worker only, so one barrier suffices.
  MAGICDB_RETURN_IF_ERROR(staged_barrier_.ArriveAndWait());

  std::vector<StagedGroup> staged;
  for (int w = 0; w < num_workers_; ++w) {
    auto& src = staging_[w][worker];
    staged.insert(staged.end(), std::make_move_iterator(src.begin()),
                  std::make_move_iterator(src.end()));
    src.clear();
    src.shrink_to_fit();
  }
  // Sequential first-seen order within the partition: ascending first-seen
  // input rank. Combining equal keys in this order also fixes the double
  // summation order deterministically at every DoP.
  std::sort(staged.begin(), staged.end(),
            [](const StagedGroup& a, const StagedGroup& b) {
              return a.pos != b.pos ? a.pos < b.pos : a.sub < b.sub;
            });
  merged->clear();
  merged->reserve(staged.size());
  std::unordered_map<uint64_t, std::vector<size_t>> index;
  for (StagedGroup& g : staged) {
    std::vector<size_t>& chain = index[g.hash];
    StagedGroup* into = nullptr;
    for (size_t gi : chain) {
      if (CompareTuples((*merged)[gi].key, g.key) == 0) {
        into = &(*merged)[gi];
        break;
      }
    }
    if (into == nullptr) {
      chain.push_back(merged->size());
      merged->push_back(std::move(g));
      continue;
    }
    MAGICDB_CHECK(into->states.size() == g.states.size());
    for (size_t a = 0; a < g.states.size(); ++a) {
      into->states[a].CombineFrom(g.states[a]);
    }
  }

  if (worker == 0) {
    // Grace partitioning-pass decision on the *global* input size, charged
    // exactly once (attribution to worker 0 is arbitrary; merged totals
    // are what the single-writer counter contract guarantees).
    const int64_t input_bytes =
        total_input_bytes_.load(std::memory_order_relaxed);
    if (input_bytes > memory_budget_bytes_) {
      const int64_t passes =
          SpillPasses(static_cast<double>(input_bytes),
                      static_cast<double>(memory_budget_bytes_));
      const int64_t pages =
          (input_bytes + CostConstants::kPageSizeBytes - 1) /
          CostConstants::kPageSizeBytes;
      ctx->counters().pages_written += pages * passes;
      ctx->counters().pages_read += pages * passes;
    }
  }
  return Status::OK();
}

void SharedAggregate::Abort(Status status) {
  staged_barrier_.Abort(std::move(status));
}

}  // namespace magicdb
