#include "src/parallel/morsel.h"

#include <algorithm>

#include "src/common/logging.h"

namespace magicdb {

MorselSource::MorselSource(int64_t num_rows, int64_t rows_per_page,
                           int64_t target_rows)
    : num_rows_(num_rows < 0 ? 0 : num_rows) {
  MAGICDB_CHECK(rows_per_page >= 1);
  if (target_rows < 1) target_rows = 1;
  // Round the morsel size up to a whole number of pages.
  morsel_rows_ =
      ((target_rows + rows_per_page - 1) / rows_per_page) * rows_per_page;
  num_morsels_ = (num_rows_ + morsel_rows_ - 1) / morsel_rows_;
}

bool MorselSource::Next(Morsel* morsel) {
  const int64_t i = next_.fetch_add(1, std::memory_order_relaxed);
  if (i >= num_morsels_) return false;
  morsel->index = i;
  morsel->begin = i * morsel_rows_;
  morsel->end = std::min(num_rows_, morsel->begin + morsel_rows_);
  return true;
}

}  // namespace magicdb
