#ifndef MAGICDB_PARALLEL_PARALLEL_EXEC_H_
#define MAGICDB_PARALLEL_PARALLEL_EXEC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/cost_counters.h"
#include "src/common/memory_tracker.h"
#include "src/common/statusor.h"
#include "src/exec/filter_join_op.h"
#include "src/exec/operator.h"

namespace magicdb {

class SpillManager;
class ThreadPool;

/// Outcome of one (possibly parallel) pipeline execution.
struct ParallelRunResult {
  std::vector<Tuple> rows;

  /// Per-worker counters merged at pipeline close. The charging protocol
  /// (every row's work charged by exactly one worker, whole-relation
  /// charges by exactly one designated worker) makes these identical to a
  /// single-threaded execution's counters at any DoP.
  CostCounters counters;

  /// Degree of parallelism actually used (1 after a fallback).
  int used_dop = 1;

  /// Why the plan ran single-threaded; empty when it ran parallel.
  std::string fallback_reason;

  /// Summed Table-1 phase measurements of the plan's Filter Join, if any.
  bool has_filter_join = false;
  FilterJoinMeasured filter_join_measured;
  int64_t filter_set_size = 0;
};

/// A parallel execution staged for streaming: the outcome of
/// ParallelExecutor::RunStaged. When the gang ran (`staged` == true) the
/// workers have already produced and rank-tagged every output row;
/// `stream_root` is a GatherOp whose Open/Next/Close drains the
/// deterministic merge incrementally — pumping it performs no query work
/// and must charge nothing, and `counters`/`filter_join_*` are final. When
/// the plan fell back (`staged` == false) nothing has executed yet:
/// `stream_root` is the untouched first replica, and the caller's pump
/// performs the actual execution (its ExecContext accrues the counters).
/// Either way the caller owns `stream_root` and can feed it into a bounded
/// ResultSink batch by batch instead of materializing a full result.
struct StagedStream {
  OpPtr stream_root;
  bool staged = false;

  /// Final only when `staged`; see above.
  CostCounters counters;
  int used_dop = 1;
  std::string fallback_reason;
  bool has_filter_join = false;
  FilterJoinMeasured filter_join_measured;
  int64_t filter_set_size = 0;
};

/// Morsel-driven parallel executor. Takes `dop` isomorphic plan replicas
/// (the optimizer is deterministic, so optimizing the same query `dop`
/// times yields identical trees), wires shared state into each — a
/// MorselSource per scanned base table, a SharedHashBuild per hash join, a
/// SharedFilterJoin for the (at most one) topmost Filter Join, a
/// SharedAggregate for the (at most one) aggregation above the joins — and
/// runs one replica per worker on a work-stealing pool. Output rows are
/// tagged with their sequential-order rank (driving-scan position, or the
/// aggregate's group first-seen rank) and gather-merged, so results are
/// byte-identical to DoP=1.
///
/// Parallel-safe plan shape (anything else falls back to sequential):
///
///   [Project|Filter]* -> [HashAggregate]? -> [Project|Filter]*
///     -> [FilterJoin]? -> ([Project|Filter]* HashJoin)*
///     -> SeqScan                         (each HashJoin inner:
///                                          [Project|Filter]* -> SeqScan)
class ParallelExecutor {
 public:
  /// `dop` >= 1; clamped up to 1.
  explicit ParallelExecutor(int dop);

  /// Runs the pipeline. `replicas` must contain either `dop` isomorphic
  /// plans, or at least one plan (fallback runs replicas[0]). Consumes the
  /// replicas. `proto` is a prototype execution environment: every worker's
  /// ExecContext (and the fallback drain's) inherits its configuration —
  /// cancel token, memory governor/budget, spill area, batch size, shared
  /// thread pool, and the cardinality-feedback ledger with its
  /// re-optimization threshold (see ExecContext::InheritConfig). Counters
  /// and filter-set registries stay per-worker. When `proto` carries a
  /// shared pool the caller must uphold ThreadPool::RunGang's deadlock
  /// contract: at most pool->size() blocking gang tasks outstanding — the
  /// query service's admission controller reserves `dop` slots per parallel
  /// query for exactly this reason.
  StatusOr<ParallelRunResult> Run(std::vector<OpPtr> replicas,
                                  const ExecContext& proto);

  /// Streaming variant: runs the worker gang to completion (or decides the
  /// fallback without executing anything) and returns the operator the
  /// caller pumps to deliver rows incrementally — see StagedStream. Run()
  /// is a thin drain-to-vector wrapper over this.
  StatusOr<StagedStream> RunStaged(std::vector<OpPtr> replicas,
                                   const ExecContext& proto);

  int dop() const { return dop_; }

  /// Why `root` cannot run parallel; empty string == parallel-safe.
  /// Exposed for tests and EXPLAIN-style diagnostics.
  static std::string UnsafeReason(const Operator& root);

 private:
  int dop_;
};

}  // namespace magicdb

#endif  // MAGICDB_PARALLEL_PARALLEL_EXEC_H_
