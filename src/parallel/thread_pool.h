#ifndef MAGICDB_PARALLEL_THREAD_POOL_H_
#define MAGICDB_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace magicdb {

/// Work-stealing thread pool. Each worker owns a deque: it pushes and pops
/// its own tasks LIFO (cache-friendly for recursive decomposition) and
/// steals FIFO from the other workers when its own deque runs dry (the
/// oldest task is the one most likely to represent a large untouched piece
/// of work). Deques are mutex-protected; at morsel granularity the lock is
/// a vanishing fraction of per-task work, and the implementation stays
/// trivially TSAN-clean.
///
/// Two usage modes:
///   - Submit()/SubmitTo() + WaitIdle(): fire-and-forget task graphs.
///   - RunOnAllWorkers(fn): runs fn(worker_id) on every worker
///     simultaneously and returns the per-worker Statuses. Pipelines that
///     synchronize through barriers need this mode — it guarantees one
///     concurrently-running task per worker, so no barrier participant is
///     stuck behind another in a queue.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return num_workers_; }

  /// Enqueues a task on the least-recently-targeted worker (round robin).
  void Submit(std::function<void()> task);

  /// Enqueues a task on a specific worker's deque. Another worker may still
  /// steal it; use RunOnAllWorkers for strict per-worker placement.
  void SubmitTo(int worker, std::function<void()> task);

  /// Blocks until every queued task has finished and all workers are idle.
  void WaitIdle();

  /// Runs fn(worker_id) once on every worker thread concurrently; blocks
  /// until all invocations return. Tasks submitted via Submit while this is
  /// in flight wait until the per-worker functions complete.
  std::vector<Status> RunOnAllWorkers(const std::function<Status(int)>& fn);

  /// Runs fn(0..n-1) as `n` ordinary tasks on the (possibly shared) pool
  /// and blocks until all return. Unlike RunOnAllWorkers the tasks are not
  /// pinned one-per-worker, so several gangs and any number of short
  /// non-blocking tasks can share one pool.
  ///
  /// Deadlock contract for gang members that block on barriers with each
  /// other: the caller must ensure that the total number of potentially
  /// blocking gang tasks outstanding across all concurrent RunGang calls
  /// never exceeds size(). Work stealing then guarantees every member
  /// eventually occupies a worker, so every barrier fills. The query
  /// service's slot-based admission controller maintains this invariant.
  std::vector<Status> RunGang(int n, const std::function<Status(int)>& fn);

  /// Number of successful steals since construction (observability; the
  /// work-stealing test asserts this is non-zero under imbalance).
  int64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int id);
  bool TryRunOneTask(int id);

  // Fixed before any worker starts: workers read size() while the
  // constructor is still growing workers_, so the count must not alias the
  // vector's (racing) size field.
  const int num_workers_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;                  // guards sleeping / wakeup + idle tracking
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  int64_t pending_ = 0;  // queued + running tasks
  bool shutdown_ = false;

  std::atomic<int64_t> steals_{0};
  std::atomic<int64_t> next_queue_{0};
};

}  // namespace magicdb

#endif  // MAGICDB_PARALLEL_THREAD_POOL_H_
