#include "src/parallel/parallel_exec.h"

#include <memory>
#include <utility>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/exec/aggregate_op.h"
#include "src/exec/basic_ops.h"
#include "src/exec/gather_op.h"
#include "src/exec/join_ops.h"
#include "src/exec/scan_ops.h"
#include "src/parallel/morsel.h"
#include "src/parallel/partitioned_aggregate.h"
#include "src/parallel/partitioned_build.h"
#include "src/parallel/thread_pool.h"
#include "src/spill/row_serde.h"
#include "src/spill/spill_manager.h"

namespace magicdb {

namespace {

// The executor owns the replica trees, so shedding the const that
// Children() adds for printing purposes is sound.
Operator* Child(const Operator* op, size_t i) {
  return const_cast<Operator*>(op->Children()[i]);
}

/// The parallel-relevant sites of one plan replica, in the fixed shape
/// ParallelExecutor documents. hash_joins/hash_inner_scans are parallel
/// arrays in top-down (probe-order) encounter order.
struct ReplicaShape {
  SeqScanOp* driving_scan = nullptr;
  HashAggregateOp* aggregate = nullptr;
  FilterJoinOp* filter_join = nullptr;
  std::vector<HashJoinOp*> hash_joins;
  std::vector<SeqScanOp*> hash_inner_scans;
};

/// Walks a hash join's build side: [Project|Filter]* -> SeqScan.
SeqScanOp* FindInnerScan(Operator* node) {
  while (true) {
    if (auto* scan = dynamic_cast<SeqScanOp*>(node)) return scan;
    if (dynamic_cast<FilterOp*>(node) != nullptr ||
        dynamic_cast<ProjectOp*>(node) != nullptr) {
      node = Child(node, 0);
      continue;
    }
    return nullptr;
  }
}

/// Classifies `root` against the parallel-safe shape. Returns the empty
/// string and fills `shape` on success, else the reason the plan must run
/// sequentially.
std::string Analyze(Operator* root, ReplicaShape* shape) {
  Operator* node = root;
  while (true) {
    if (dynamic_cast<FilterOp*>(node) != nullptr ||
        dynamic_cast<ProjectOp*>(node) != nullptr) {
      node = Child(node, 0);
      continue;
    }
    if (auto* agg = dynamic_cast<HashAggregateOp*>(node)) {
      // One aggregation, and it must sit above any joins: the aggregate
      // consumes the whole driving pipeline and re-ranks output by group
      // first-seen order, so a join probing *aggregated* rows would have no
      // morsel positions to rank by.
      if (shape->aggregate != nullptr) {
        return "more than one aggregation in the pipeline";
      }
      if (shape->filter_join != nullptr || !shape->hash_joins.empty()) {
        return "aggregation below a join in the driving chain";
      }
      shape->aggregate = agg;
      node = Child(node, 0);
      continue;
    }
    if (auto* fj = dynamic_cast<FilterJoinOp*>(node)) {
      // One Filter Join anywhere along the driving chain. Its probe phase
      // rescans the materialized production set, which makes it the chain's
      // position provider; a second one would fight over that role.
      if (shape->filter_join != nullptr) {
        return "more than one FilterJoin in the driving chain";
      }
      shape->filter_join = fj;
      node = Child(node, 0);  // descend the outer / production side
      continue;
    }
    if (auto* hj = dynamic_cast<HashJoinOp*>(node)) {
      SeqScanOp* inner_scan = FindInnerScan(Child(node, 1));
      if (inner_scan == nullptr) {
        return "hash-join build side is not a base-table scan chain";
      }
      shape->hash_joins.push_back(hj);
      shape->hash_inner_scans.push_back(inner_scan);
      node = Child(node, 0);
      continue;
    }
    if (auto* scan = dynamic_cast<SeqScanOp*>(node)) {
      shape->driving_scan = scan;
      return "";
    }
    return "unsupported operator in pipeline: " + node->Describe();
  }
}

std::shared_ptr<MorselSource> MakeSourceFor(const SeqScanOp* scan) {
  const Table* t = scan->table();
  return std::make_shared<MorselSource>(
      t->NumRows(), RowsPerPage(t->schema().TupleWidthBytes()));
}

/// Flushes the run's accumulated in-memory rows to its gather spill file
/// (created on first use, charging disabled: gather staging is bookkeeping,
/// not query work). Arrival order is rank order, so the file stays sorted.
Status FlushGatherRows(GatherRun* run, ExecContext* ctx,
                       std::string* scratch) {
  if (run->spilled == nullptr) {
    run->spilled = std::make_unique<SpillFile>(ctx->spill_manager().get(),
                                               "gather",
                                               /*charge_cost=*/false);
  }
  for (const GatherRow& r : run->rows) {
    scratch->clear();
    spill::AppendI64(scratch, r.pos);
    spill::AppendI64(scratch, r.sub);
    spill::AppendTuple(scratch, r.row);
    MAGICDB_RETURN_IF_ERROR(run->spilled->Append(*scratch, ctx));
  }
  run->rows.clear();
  return Status::OK();
}

/// Opens, drains, and closes one replica, tagging every output row with the
/// sequential-order rank the gather merge sorts by: the aggregate's group
/// first-seen (pos, sub) when the pipeline aggregates, else the global
/// driving-scan position.
Status RunPipeline(Operator* root, const ReplicaShape& shape,
                   ExecContext* ctx, GatherRun* run) {
  MAGICDB_RETURN_IF_ERROR(root->Open(ctx));
  int64_t staged_charged = 0;
  int64_t rows_staged = 0;
  std::string scratch;
  // Releases the staged-row charges on an error unwind; a successful drain
  // keeps them charged until the gather stream is consumed.
  auto fail = [&](Status st) {
    ctx->ReleaseMemory(staged_charged);
    return st;
  };
  // Admits one output row into the gather run under the query's memory
  // governor, flushing the staged tail to the gather spill file on a breach.
  auto stage = [&](Tuple t, int64_t pos, int64_t sub) -> Status {
    if (ctx->memory_tracker() != nullptr) {
      // Staged gather rows live until the merged stream is drained, so
      // they count against the query's limit like any retained state.
      const int64_t row_bytes = TupleByteWidth(t);
      Status charge = ctx->ChargeMemory(row_bytes);
      if (!charge.ok()) {
        if (charge.code() != StatusCode::kResourceExhausted ||
            !ctx->spill_enabled()) {
          return charge;
        }
        // Flush the staged rows to this worker's gather spill file and
        // release their memory; the tail restarts empty.
        MAGICDB_RETURN_IF_ERROR(FlushGatherRows(run, ctx, &scratch));
        ctx->ReleaseMemory(staged_charged);
        staged_charged = 0;
        MAGICDB_RETURN_IF_ERROR(ctx->ChargeMemory(row_bytes));
      }
      staged_charged += row_bytes;
    }
    run->rows.push_back({pos, sub, std::move(t)});
    run->staged_rows += 1;
    return Status::OK();
  };
  // Vectorized drain: rank tags ride in the batches (scan position from the
  // morsel scan, group first-seen rank from the aggregate), so no per-row
  // position-provider query is needed. A Filter Join's position provider is
  // inherently row-at-a-time, so those pipelines stay on the row drain.
  if (ctx->batch_size() > 0 && shape.filter_join == nullptr) {
    RowBatch batch(static_cast<int32_t>(ctx->batch_size()));
    bool eof = false;
    while (!eof) {
      Status st = root->NextBatch(&batch, &eof);
      if (!st.ok()) return fail(std::move(st));
      const std::vector<int32_t>* sel =
          batch.sel_active() ? &batch.selection() : nullptr;
      const int32_t n =
          sel ? static_cast<int32_t>(sel->size()) : batch.num_rows();
      if (n > 0 && !batch.has_ranks()) {
        return fail(
            Status::Internal("parallel pipeline batch lacks rank tags"));
      }
      Tuple t;
      for (int32_t k = 0; k < n; ++k) {
        const int32_t r = sel ? (*sel)[k] : k;
        batch.MoveRowToTuple(r, &t);
        Status ss = stage(std::move(t), batch.pos()[static_cast<size_t>(r)],
                          batch.sub()[static_cast<size_t>(r)]);
        if (!ss.ok()) return fail(std::move(ss));
      }
      // Per-batch cancellation checkpoint replaces the per-1024-rows one.
      ctx->NoteProgress(n + 1);
      Status cc = ctx->CheckCancelled();
      if (!cc.ok()) return fail(std::move(cc));
    }
  } else {
    while (true) {
      Tuple t;
      bool eof = false;
      Status st = root->Next(&t, &eof);
      if (!st.ok()) return fail(std::move(st));
      if (eof) break;
      int64_t pos = 0;
      int64_t sub = 0;
      if (shape.aggregate != nullptr) {
        pos = shape.aggregate->last_group_pos();
        sub = shape.aggregate->last_group_sub();
      } else if (shape.filter_join != nullptr) {
        pos = shape.filter_join->last_probe_global_pos();
      } else {
        pos = shape.driving_scan->last_global_row();
      }
      Status ss = stage(std::move(t), pos, sub);
      if (!ss.ok()) return fail(std::move(ss));
      // Morsel-loop cancellation checkpoint (the driving scan also checks at
      // every morsel claim; this covers probe-heavy plans between claims).
      if ((++rows_staged & 1023) == 0) {
        ctx->NoteProgress(1024);
        Status cc = ctx->CheckCancelled();
        if (!cc.ok()) return fail(std::move(cc));
      }
    }
  }
  if (run->spilled != nullptr) {
    // Once a run has spilled, flush its in-memory tail too and drop the
    // staged charges: a spilled run must not pin staged rows against the
    // tracker while the gather stream drains, because the result sink
    // charges its queued batches against the same limit during streaming.
    Status fs = FlushGatherRows(run, ctx, &scratch);
    if (!fs.ok()) return fail(std::move(fs));
    ctx->ReleaseMemory(staged_charged);
    staged_charged = 0;
    Status fin = run->spilled->FinishWrite(ctx);
    if (!fin.ok()) return fail(std::move(fin));
    // Informational: lets the service see that this query spilled (page
    // I/O is deliberately not charged — see FlushGatherRows).
    ctx->counters().spill_bytes_written += run->spilled->bytes();
  }
  Status cs = root->Close();
  if (!cs.ok()) return fail(std::move(cs));
  return Status::OK();
}

/// Fallback outcome: nothing has executed; the caller pumps replicas[0].
StagedStream MakeFallback(std::vector<OpPtr>* replicas,
                          std::string fallback_reason) {
  StagedStream staged;
  staged.stream_root = std::move((*replicas)[0]);
  staged.staged = false;
  staged.used_dop = 1;
  staged.fallback_reason = std::move(fallback_reason);
  return staged;
}

}  // namespace

ParallelExecutor::ParallelExecutor(int dop) : dop_(dop < 1 ? 1 : dop) {}

std::string ParallelExecutor::UnsafeReason(const Operator& root) {
  ReplicaShape shape;
  return Analyze(const_cast<Operator*>(&root), &shape);
}

StatusOr<ParallelRunResult> ParallelExecutor::Run(
    std::vector<OpPtr> replicas, const ExecContext& proto) {
  MAGICDB_ASSIGN_OR_RETURN(StagedStream staged,
                           RunStaged(std::move(replicas), proto));
  ParallelRunResult result;
  result.used_dop = staged.used_dop;
  result.fallback_reason = std::move(staged.fallback_reason);
  ExecContext ctx;
  if (!staged.staged) {
    // Fallback: this drain IS the execution.
    ctx.InheritConfig(proto);
  }
  MAGICDB_ASSIGN_OR_RETURN(result.rows,
                           ExecuteToVector(staged.stream_root.get(), &ctx));
  if (staged.staged) {
    MAGICDB_CHECK(ctx.counters().TotalCost() == 0.0);  // GatherOp is free
    result.counters = staged.counters;
    result.has_filter_join = staged.has_filter_join;
    result.filter_join_measured = staged.filter_join_measured;
    result.filter_set_size = staged.filter_set_size;
  } else {
    result.counters = ctx.counters();
    if (const FilterJoinOp* fj = FindFilterJoin(*staged.stream_root)) {
      result.has_filter_join = true;
      result.filter_join_measured = fj->measured();
      result.filter_set_size = fj->last_filter_set_size();
    }
  }
  return result;
}

StatusOr<StagedStream> ParallelExecutor::RunStaged(
    std::vector<OpPtr> replicas, const ExecContext& proto) {
  const int64_t memory_budget_bytes = proto.memory_budget_bytes();
  if (replicas.empty()) {
    return Status::InvalidArgument("ParallelExecutor::Run: no plan replicas");
  }
  if (proto.cancel_token() != nullptr) {
    // A query whose deadline expired while queued for admission must not
    // start executing at all.
    MAGICDB_RETURN_IF_ERROR(proto.cancel_token()->Check());
  }
  if (dop_ == 1) {
    return MakeFallback(&replicas, "dop=1");
  }

  // Analyze every replica; verify the trees really are isomorphic (the
  // optimizer is deterministic, so a mismatch is a bug upstream — but a
  // wrong answer would be worse than a sequential one, so verify).
  std::vector<ReplicaShape> shapes(replicas.size());
  std::string reason = Analyze(replicas[0].get(), &shapes[0]);
  if (!reason.empty()) {
    return MakeFallback(&replicas, reason);
  }
  if (static_cast<int>(replicas.size()) != dop_) {
    return MakeFallback(&replicas, "replica count does not match dop");
  }
  const std::string tree0 = replicas[0]->TreeString();
  for (size_t w = 1; w < replicas.size(); ++w) {
    reason = Analyze(replicas[w].get(), &shapes[w]);
    bool same = reason.empty() && replicas[w]->TreeString() == tree0 &&
                shapes[w].hash_joins.size() == shapes[0].hash_joins.size() &&
                (shapes[w].filter_join != nullptr) ==
                    (shapes[0].filter_join != nullptr) &&
                (shapes[w].aggregate != nullptr) ==
                    (shapes[0].aggregate != nullptr) &&
                shapes[w].driving_scan->table() ==
                    shapes[0].driving_scan->table();
    for (size_t j = 0; same && j < shapes[0].hash_inner_scans.size(); ++j) {
      same = shapes[w].hash_inner_scans[j]->table() ==
             shapes[0].hash_inner_scans[j]->table();
    }
    if (!same) {
      return MakeFallback(&replicas, "plan replicas are not isomorphic");
    }
  }

  // Shared state, one object per parallel site, wired into every replica.
  auto driving_source = MakeSourceFor(shapes[0].driving_scan);
  std::vector<std::shared_ptr<MorselSource>> inner_sources;
  std::vector<std::shared_ptr<SharedHashBuild>> shared_builds;
  for (const SeqScanOp* scan : shapes[0].hash_inner_scans) {
    inner_sources.push_back(MakeSourceFor(scan));
    shared_builds.push_back(
        std::make_shared<SharedHashBuild>(dop_, memory_budget_bytes));
  }
  std::shared_ptr<SharedFilterJoin> shared_fj;
  if (shapes[0].filter_join != nullptr) {
    shared_fj = std::make_shared<SharedFilterJoin>(dop_);
  }
  std::shared_ptr<SharedAggregate> shared_agg;
  if (shapes[0].aggregate != nullptr) {
    shared_agg = std::make_shared<SharedAggregate>(dop_, memory_budget_bytes);
  }
  for (int w = 0; w < dop_; ++w) {
    shapes[w].driving_scan->AttachMorselSource(driving_source);
    for (size_t j = 0; j < shapes[w].hash_joins.size(); ++j) {
      shapes[w].hash_inner_scans[j]->AttachMorselSource(inner_sources[j]);
      shapes[w].hash_joins[j]->EnableSharedBuild(shared_builds[j], w,
                                                 shapes[w].hash_inner_scans[j]);
    }
    if (shared_fj != nullptr) {
      shapes[w].filter_join->EnableParallel(shared_fj, w,
                                            shapes[w].driving_scan);
    }
    if (shared_agg != nullptr) {
      shapes[w].aggregate->EnableParallel(shared_agg, w,
                                          shapes[w].driving_scan,
                                          shapes[w].filter_join);
    }
  }

  // A failing worker must release every peer blocked on a phase barrier,
  // or RunOnAllWorkers (and the query) would hang.
  auto abort_all = [&](const Status& st) {
    for (auto& b : shared_builds) b->Abort(st);
    if (shared_fj != nullptr) shared_fj->Abort(st);
    if (shared_agg != nullptr) shared_agg->Abort(st);
  };

  std::vector<ExecContext> contexts(dop_);
  std::vector<GatherRun> runs(dop_);
  const auto worker_fn = [&](int w) -> Status {
    // Gang-startup fault site. It lives here rather than in
    // ThreadPool::RunGang so a fired injection still runs the abort path:
    // peers that already entered a phase barrier must be released.
    Status fp = MAGICDB_FAILPOINT_EVAL("parallel.gang.start");
    if (!fp.ok()) {
      abort_all(fp);
      return fp;
    }
    contexts[w].InheritConfig(proto);
    Status st = RunPipeline(replicas[w].get(), shapes[w], &contexts[w],
                            &runs[w]);
    if (!st.ok()) abort_all(st);
    return st;
  };
  std::vector<Status> statuses;
  if (proto.shared_pool() != nullptr) {
    // Multiplexed mode: the gang shares the service-wide pool with other
    // queries' tasks. Admission guarantees the gang fits (see
    // ExecContext::shared_pool).
    statuses = proto.shared_pool()->RunGang(dop_, worker_fn);
  } else {
    ThreadPool pool(dop_);
    statuses = pool.RunOnAllWorkers(worker_fn);
  }
  for (const Status& st : statuses) {
    // Prefer a non-abort status if one exists; all failures here share the
    // same root cause anyway (abort propagates the first error).
    if (!st.ok()) return st;
  }

  StagedStream staged;
  staged.staged = true;
  staged.used_dop = dop_;
  for (int w = 0; w < dop_; ++w) {
    contexts[w].counters().AssertNonNegative();
    staged.counters += contexts[w].counters();
    if (shapes[w].filter_join != nullptr) {
      staged.has_filter_join = true;
      const FilterJoinMeasured& m = shapes[w].filter_join->measured();
      staged.filter_join_measured.production += m.production;
      staged.filter_join_measured.projection += m.projection;
      staged.filter_join_measured.avail_filter += m.avail_filter;
      staged.filter_join_measured.filter_inner += m.filter_inner;
      staged.filter_join_measured.final_join += m.final_join;
      // Only the coordinator observed the filter set; peers report 0.
      staged.filter_set_size +=
          shapes[w].filter_join->last_filter_set_size();
    }
  }

  // Observation-only ledger entry for the staged gather: the exact output
  // row count of the parallel pipeline (all workers, spilled prefixes
  // included). It never triggers a re-optimization — the pipeline has
  // already run to completion — but it rides along in the query's feedback
  // for diagnostics.
  if (proto.cardinality_feedback() != nullptr) {
    int64_t staged_rows = 0;
    for (const GatherRun& r : runs) staged_rows += r.staged_rows;
    (void)contexts[0].RecordCardinality(
        "gather:" + shapes[0].driving_scan->Describe(), "staged_gather",
        /*estimated=*/0.0, static_cast<double>(staged_rows), /*exact=*/true,
        /*can_trigger=*/false);
  }

  // The GatherRows own their tuples outright, so the merge outlives the
  // replica trees it was produced by (destroyed when `replicas` goes out of
  // scope here).
  staged.stream_root =
      std::make_unique<GatherOp>(replicas[0]->schema(), std::move(runs));
  return staged;
}

}  // namespace magicdb
