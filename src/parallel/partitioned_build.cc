#include "src/parallel/partitioned_build.h"

#include <algorithm>

#include "src/common/cost_counters.h"
#include "src/common/logging.h"
#include "src/exec/exec_context.h"

namespace magicdb {

// ----- CancellableBarrier -----

CancellableBarrier::CancellableBarrier(int parties) : parties_(parties) {
  MAGICDB_CHECK(parties >= 1);
}

Status CancellableBarrier::ArriveAndWait() {
  std::unique_lock<std::mutex> lock(mu_);
  if (aborted_) return abort_status_;
  arrived_ += 1;
  if (arrived_ == parties_) {
    arrived_ = 0;
    generation_ += 1;
    cv_.notify_all();
    return Status::OK();
  }
  const int64_t gen = generation_;
  cv_.wait(lock, [&] { return aborted_ || generation_ != gen; });
  return aborted_ ? abort_status_ : Status::OK();
}

void CancellableBarrier::Abort(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (aborted_) return;
  aborted_ = true;
  abort_status_ = std::move(status);
  cv_.notify_all();
}

// ----- SharedHashBuild -----

SharedHashBuild::SharedHashBuild(int num_workers, int64_t memory_budget_bytes)
    : num_workers_(num_workers),
      memory_budget_bytes_(memory_budget_bytes),
      staging_(num_workers),
      partitions_(num_workers),
      staged_barrier_(num_workers),
      built_barrier_(num_workers) {
  for (auto& per_worker : staging_) per_worker.resize(num_workers);
}

void SharedHashBuild::Stage(int worker, int64_t pos, uint64_t hash,
                            Tuple row) {
  const int partition = static_cast<int>(hash % num_workers_);
  total_build_bytes_.fetch_add(TupleByteWidth(row),
                               std::memory_order_relaxed);
  staging_[worker][partition].push_back({pos, hash, std::move(row)});
}

Status SharedHashBuild::FinishStaging(int worker, ExecContext* ctx) {
  MAGICDB_RETURN_IF_ERROR(staged_barrier_.ArriveAndWait());
  // Build the owned partition: gather this partition's staged rows from
  // every worker, restore sequential scan order, insert. No counters are
  // charged here — the hash work was charged when the rows were staged.
  std::vector<StagedRow> rows;
  for (int w = 0; w < num_workers_; ++w) {
    auto& src = staging_[w][worker];
    rows.insert(rows.end(), std::make_move_iterator(src.begin()),
                std::make_move_iterator(src.end()));
    src.clear();
    src.shrink_to_fit();
  }
  std::sort(rows.begin(), rows.end(),
            [](const StagedRow& a, const StagedRow& b) { return a.pos < b.pos; });
  auto& table = partitions_[worker];
  for (StagedRow& r : rows) {
    table[r.hash].push_back(std::move(r.row));
  }
  if (worker == 0) {
    // Grace spill decision on the *global* build size, charged exactly once
    // (attribution to worker 0 is arbitrary; merged totals are what the
    // single-writer counter contract guarantees).
    const int64_t build_bytes =
        total_build_bytes_.load(std::memory_order_relaxed);
    if (build_bytes > memory_budget_bytes_) {
      spilled_ = true;
      spill_passes_.store(
          SpillPasses(static_cast<double>(build_bytes),
                      static_cast<double>(memory_budget_bytes_)),
          std::memory_order_relaxed);
      const int64_t build_pages =
          (build_bytes + CostConstants::kPageSizeBytes - 1) /
          CostConstants::kPageSizeBytes;
      const int64_t passes = spill_passes_.load(std::memory_order_relaxed);
      ctx->counters().pages_written += build_pages * passes;
      ctx->counters().pages_read += build_pages * passes;
    }
  }
  return built_barrier_.ArriveAndWait();
}

const std::vector<Tuple>* SharedHashBuild::Probe(uint64_t hash) const {
  const auto& table = partitions_[hash % num_workers_];
  auto it = table.find(hash);
  return it == table.end() ? nullptr : &it->second;
}

void SharedHashBuild::ChargeProbeBytes(ExecContext* ctx, int64_t bytes) {
  const int64_t before = probe_bytes_.fetch_add(bytes,
                                                std::memory_order_relaxed);
  const int64_t pages =
      (before + bytes) / CostConstants::kPageSizeBytes -
      before / CostConstants::kPageSizeBytes;
  if (pages > 0) {
    const int64_t passes = spill_passes_.load(std::memory_order_relaxed);
    ctx->counters().pages_written += pages * passes;
    ctx->counters().pages_read += pages * passes;
  }
}

void SharedHashBuild::Abort(Status status) {
  staged_barrier_.Abort(status);
  built_barrier_.Abort(std::move(status));
}

// ----- SharedFilterJoin -----

SharedFilterJoin::SharedFilterJoin(int num_workers)
    : num_workers_(num_workers),
      staging_(num_workers),
      deduped_(num_workers),
      staged_barrier_(num_workers),
      deduped_barrier_(num_workers),
      inner_barrier_(num_workers) {
  for (auto& per_worker : staging_) per_worker.resize(num_workers);
}

void SharedFilterJoin::StageKey(int worker, int64_t pos, uint64_t hash,
                                Tuple key) {
  const int partition = static_cast<int>(hash % num_workers_);
  staging_[worker][partition].push_back({pos, hash, std::move(key)});
}

void SharedFilterJoin::AddProductionRows(int64_t rows, int64_t bytes) {
  total_production_rows_.fetch_add(rows, std::memory_order_relaxed);
  total_production_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

Status SharedFilterJoin::StagingDone() {
  return staged_barrier_.ArriveAndWait();
}

Status SharedFilterJoin::DedupPartition(int worker) {
  std::vector<StagedRow> rows;
  for (int w = 0; w < num_workers_; ++w) {
    auto& src = staging_[w][worker];
    rows.insert(rows.end(), std::make_move_iterator(src.begin()),
                std::make_move_iterator(src.end()));
    src.clear();
    src.shrink_to_fit();
  }
  // First occurrence wins, in sequential production order — identical to
  // the order a single-threaded distinct projection emits keys.
  std::sort(rows.begin(), rows.end(),
            [](const StagedRow& a, const StagedRow& b) { return a.pos < b.pos; });
  std::unordered_map<uint64_t, std::vector<const Tuple*>> seen;
  std::vector<StagedRow>& out = deduped_[worker];
  out.reserve(rows.size());  // pointers into `out` must stay stable below
  for (StagedRow& r : rows) {
    std::vector<const Tuple*>& chain = seen[r.hash];
    bool dup = false;
    for (const Tuple* k : chain) {
      if (CompareTuples(*k, r.row) == 0) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    out.push_back(std::move(r));
    chain.push_back(&out.back().row);
  }
  return deduped_barrier_.ArriveAndWait();
}

std::vector<Tuple> SharedFilterJoin::TakeOrderedKeys() {
  std::vector<StagedRow> all;
  for (auto& partition : deduped_) {
    all.insert(all.end(), std::make_move_iterator(partition.begin()),
               std::make_move_iterator(partition.end()));
    partition.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const StagedRow& a, const StagedRow& b) { return a.pos < b.pos; });
  std::vector<Tuple> keys;
  keys.reserve(all.size());
  for (StagedRow& r : all) keys.push_back(std::move(r.row));
  return keys;
}

Status SharedFilterJoin::InnerBarrier() {
  return inner_barrier_.ArriveAndWait();
}

void SharedFilterJoin::Abort(Status status) {
  staged_barrier_.Abort(status);
  deduped_barrier_.Abort(status);
  inner_barrier_.Abort(std::move(status));
}

}  // namespace magicdb
