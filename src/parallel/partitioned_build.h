#ifndef MAGICDB_PARALLEL_PARTITIONED_BUILD_H_
#define MAGICDB_PARALLEL_PARTITIONED_BUILD_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/types/tuple.h"

namespace magicdb {

class ExecContext;

/// Reusable barrier that can be aborted: when any participant fails, it
/// calls Abort and every current and future ArriveAndWait returns the
/// failure status instead of deadlocking the pipeline.
class CancellableBarrier {
 public:
  explicit CancellableBarrier(int parties);

  /// Blocks until all parties have arrived (or the barrier is aborted).
  Status ArriveAndWait();

  /// Releases all waiters with `status`; subsequent arrivals fail fast.
  void Abort(Status status);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const int parties_;
  int arrived_ = 0;
  int64_t generation_ = 0;
  bool aborted_ = false;
  Status abort_status_;
};

/// One row staged into a partitioned build, remembering where it came from
/// in the sequential scan order of the build input. Partition owners sort
/// by `pos` before inserting, so every hash bucket ends up in exactly the
/// order a single-threaded build would have produced — which keeps probe
/// output (and therefore query results) byte-identical at any DoP.
struct StagedRow {
  int64_t pos = 0;
  uint64_t hash = 0;
  Tuple row;
};

/// Shared state of one partitioned parallel hash-join build
/// (HashJoinOp::EnableSharedBuild). Protocol, executed identically by all
/// `num_workers` pipeline replicas:
///
///   1. each worker drains its (morsel-driven) slice of the build input and
///      Stage()s every row into the partition its key hash selects;
///   2. FinishStaging(): barrier; then each worker builds the hash table of
///      the one partition it owns (sorting staged rows by scan position);
///      worker 0 charges the Grace-spill pass once if the global build
///      exceeded the memory budget; second barrier;
///   3. probes from any worker route by hash to the owning partition's
///      table (read-only after the second barrier).
///
/// Counter discipline: build work (hash ops, input scan) is charged by the
/// worker that staged each row — every row is staged exactly once across
/// workers, so merged counters equal a single-threaded build's.
class SharedHashBuild {
 public:
  SharedHashBuild(int num_workers, int64_t memory_budget_bytes);

  int num_workers() const { return num_workers_; }

  /// Phase 1: stage one build row (thread-safe; workers stage into
  /// per-(worker, partition) buffers, so no contention on a shared bucket).
  void Stage(int worker, int64_t pos, uint64_t hash, Tuple row);

  /// Phase 2: barrier with the other workers, build own partition, settle
  /// global spill accounting (worker 0 charges `ctx`), barrier again.
  Status FinishStaging(int worker, ExecContext* ctx);

  /// Phase 3: bucket lookup for a probe key hash; nullptr when empty.
  /// Only valid after FinishStaging returned OK.
  const std::vector<Tuple>* Probe(uint64_t hash) const;

  bool spilled() const { return spilled_; }

  /// Cardinality feedback: each worker contributes its drained build-input
  /// slice *before* the FinishStaging barrier; afterwards every worker
  /// reads the same gang-wide total, so trigger decisions are identical
  /// across the gang and DoP-invariant.
  void AddBuildRows(int64_t rows) {
    total_build_rows_.fetch_add(rows, std::memory_order_relaxed);
  }
  int64_t total_build_rows() const {
    return total_build_rows_.load(std::memory_order_relaxed);
  }

  /// Exact global Grace probe-side accounting: charges `ctx` one page
  /// write+read for every page boundary the cumulative probe byte stream
  /// crosses, independent of how rows interleave across workers. Matches
  /// the single-threaded floor(total_bytes / page) total exactly.
  void ChargeProbeBytes(ExecContext* ctx, int64_t bytes);

  void Abort(Status status);

 private:
  const int num_workers_;
  const int64_t memory_budget_bytes_;
  // staging_[worker][partition]
  std::vector<std::vector<std::vector<StagedRow>>> staging_;
  // partitions_[partition]: hash -> bucket, built by the owning worker.
  std::vector<std::unordered_map<uint64_t, std::vector<Tuple>>> partitions_;
  std::atomic<int64_t> total_build_bytes_{0};
  std::atomic<int64_t> total_build_rows_{0};
  std::atomic<int64_t> probe_bytes_{0};
  bool spilled_ = false;
  // Predicted Grace partitioning passes; probe-side page charges are
  // multiplied by it (set once behind the staging barrier, read by every
  // prober).
  std::atomic<int64_t> spill_passes_{1};
  CancellableBarrier staged_barrier_;
  CancellableBarrier built_barrier_;
};

/// Shared state of one parallel Filter Join (FilterJoinOp::EnableParallel).
/// The production set is partitioned across workers by the morsel-driven
/// outer; the filter-set build is partitioned by key hash ("each worker
/// builds a partition"); the restricted inner runs once on the coordinator
/// (worker 0); the final-join probe is parallel again. See
/// FilterJoinOp::Open for the full phase walkthrough.
class SharedFilterJoin {
 public:
  explicit SharedFilterJoin(int num_workers);

  int num_workers() const { return num_workers_; }

  /// Phase 1: stage one candidate filter key with the global position of
  /// the production row it came from.
  void StageKey(int worker, int64_t pos, uint64_t hash, Tuple key);

  void AddProductionRows(int64_t rows, int64_t bytes);
  int64_t total_production_rows() const {
    return total_production_rows_.load(std::memory_order_relaxed);
  }

  /// Barrier after production + staging.
  Status StagingDone();

  /// Phase 2: dedup the partition `worker` owns, keeping the first
  /// occurrence (minimum position) of each distinct key. Barrier after.
  Status DedupPartition(int worker);

  /// Coordinator only, after DedupPartition: all surviving keys across
  /// partitions, sorted by first-occurrence position — exactly the
  /// insertion order a single-threaded distinct projection produces.
  std::vector<Tuple> TakeOrderedKeys();

  /// The final-join hash table over the restricted inner R_k'. The shared
  /// object owns it so that no worker's Close can free it while another
  /// worker is still probing. The coordinator fills it (single writer),
  /// then everyone meets at InnerBarrier; afterwards it is read-only.
  std::unordered_map<uint64_t, std::vector<Tuple>>* mutable_inner_build() {
    return &inner_build_;
  }
  const std::unordered_map<uint64_t, std::vector<Tuple>>& inner_build() const {
    return inner_build_;
  }

  /// Coordinator arrives after filling the inner build; workers arrive to
  /// wait for it.
  Status InnerBarrier();

  void Abort(Status status);

 private:
  const int num_workers_;
  // staging_[worker][partition]: candidate keys routed by hash.
  std::vector<std::vector<std::vector<StagedRow>>> staging_;
  // deduped_[partition]: surviving (first-occurrence) keys.
  std::vector<std::vector<StagedRow>> deduped_;
  std::atomic<int64_t> total_production_rows_{0};
  std::atomic<int64_t> total_production_bytes_{0};
  std::unordered_map<uint64_t, std::vector<Tuple>> inner_build_;
  CancellableBarrier staged_barrier_;
  CancellableBarrier deduped_barrier_;
  CancellableBarrier inner_barrier_;
};

}  // namespace magicdb

#endif  // MAGICDB_PARALLEL_PARTITIONED_BUILD_H_
