#include "src/storage/table.h"

#include "src/common/logging.h"
#include "src/storage/index.h"

namespace magicdb {

int64_t Table::NumPages() const {
  return PagesForRows(NumRows(), schema_.TupleWidthBytes());
}

namespace {
bool ValueMatchesColumn(const Value& v, DataType column_type) {
  if (v.is_null()) return true;
  if (v.type() == column_type) return true;
  // Integer literals are accepted into double columns.
  return column_type == DataType::kDouble && v.type() == DataType::kInt64;
}
}  // namespace

Status Table::Insert(Tuple row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table " + name_);
  }
  for (int i = 0; i < schema_.num_columns(); ++i) {
    if (!ValueMatchesColumn(row[i], schema_.column(i).type)) {
      return Status::TypeError("column " + schema_.column(i).QualifiedName() +
                               " expects " +
                               DataTypeName(schema_.column(i).type) +
                               ", got " + row[i].ToString());
    }
    // Normalize int64 into double columns so stored data is uniformly typed.
    if (schema_.column(i).type == DataType::kDouble && !row[i].is_null() &&
        row[i].type() == DataType::kInt64) {
      row[i] = Value::Double(static_cast<double>(row[i].AsInt64()));
    }
  }
  const int64_t row_id = NumRows();
  for (auto& idx : hash_indexes_) idx->Insert(row, row_id);
  for (auto& idx : ordered_indexes_) idx->Insert(row, row_id);
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::InsertAll(std::vector<Tuple> rows) {
  for (Tuple& r : rows) {
    MAGICDB_RETURN_IF_ERROR(Insert(std::move(r)));
  }
  return Status::OK();
}

HashIndex* Table::CreateHashIndex(const std::vector<int>& columns) {
  for (auto& idx : hash_indexes_) {
    if (idx->columns() == columns) return idx.get();
  }
  auto idx = std::make_unique<HashIndex>(columns);
  for (int64_t i = 0; i < NumRows(); ++i) idx->Insert(rows_[i], i);
  hash_indexes_.push_back(std::move(idx));
  return hash_indexes_.back().get();
}

OrderedIndex* Table::CreateOrderedIndex(const std::vector<int>& columns) {
  for (auto& idx : ordered_indexes_) {
    if (idx->columns() == columns) return idx.get();
  }
  auto idx = std::make_unique<OrderedIndex>(columns);
  for (int64_t i = 0; i < NumRows(); ++i) idx->Insert(rows_[i], i);
  ordered_indexes_.push_back(std::move(idx));
  return ordered_indexes_.back().get();
}

const HashIndex* Table::FindHashIndex(const std::vector<int>& columns) const {
  for (const auto& idx : hash_indexes_) {
    if (idx->columns() == columns) return idx.get();
  }
  return nullptr;
}

const OrderedIndex* Table::FindOrderedIndex(
    const std::vector<int>& columns) const {
  for (const auto& idx : ordered_indexes_) {
    if (idx->columns() == columns) return idx.get();
  }
  return nullptr;
}

}  // namespace magicdb
