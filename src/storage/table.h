#ifndef MAGICDB_STORAGE_TABLE_H_
#define MAGICDB_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/cost_counters.h"
#include "src/common/status.h"
#include "src/storage/index.h"
#include "src/types/schema.h"
#include "src/types/tuple.h"

namespace magicdb {

/// Heap table: an in-memory row store with page-granular cost accounting.
/// Rows live in insertion order; NumPages() is the size the page-cost model
/// charges for a full scan. Indexes built on the table are maintained on
/// insert.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  int64_t NumRows() const { return static_cast<int64_t>(rows_.size()); }

  /// Pages this table occupies: ceil(rows * tuple_width / page_size),
  /// minimum 1 for a non-empty table.
  int64_t NumPages() const;

  /// Appends a row. The row must match the schema arity; each value must be
  /// NULL or of the column type (int64 accepted for double columns).
  Status Insert(Tuple row);

  /// Bulk append; stops at the first bad row.
  Status InsertAll(std::vector<Tuple> rows);

  const Tuple& row(int64_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Creates (or returns the existing) hash index on `columns` (indexes into
  /// the schema). Existing rows are indexed immediately.
  HashIndex* CreateHashIndex(const std::vector<int>& columns);

  /// Creates (or returns the existing) ordered index on `columns`.
  OrderedIndex* CreateOrderedIndex(const std::vector<int>& columns);

  /// Returns the hash index exactly on `columns`, or nullptr.
  const HashIndex* FindHashIndex(const std::vector<int>& columns) const;

  /// Returns the ordered index exactly on `columns`, or nullptr.
  const OrderedIndex* FindOrderedIndex(const std::vector<int>& columns) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
  std::vector<std::unique_ptr<HashIndex>> hash_indexes_;
  std::vector<std::unique_ptr<OrderedIndex>> ordered_indexes_;
};

}  // namespace magicdb

#endif  // MAGICDB_STORAGE_TABLE_H_
