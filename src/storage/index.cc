#include "src/storage/index.h"

#include <cmath>

#include "src/common/logging.h"

namespace magicdb {

void HashIndex::Insert(const Tuple& row, int64_t row_id) {
  Tuple key = ProjectTuple(row, columns_);
  const uint64_t h = HashTupleColumns(row, columns_);
  std::vector<Entry>& chain = buckets_[h];
  for (Entry& e : chain) {
    if (CompareTuples(e.key, key) == 0) {
      e.row_ids.push_back(row_id);
      ++num_entries_;
      return;
    }
  }
  chain.push_back(Entry{std::move(key), {row_id}});
  ++num_entries_;
}

std::vector<int64_t> HashIndex::Lookup(const Tuple& key) const {
  MAGICDB_CHECK(key.size() == columns_.size());
  std::vector<int> identity(key.size());
  for (size_t i = 0; i < key.size(); ++i) identity[i] = static_cast<int>(i);
  const uint64_t h = HashTupleColumns(key, identity);
  auto it = buckets_.find(h);
  if (it == buckets_.end()) return {};
  for (const Entry& e : it->second) {
    if (CompareTuples(e.key, key) == 0) return e.row_ids;
  }
  return {};
}

void OrderedIndex::Insert(const Tuple& row, int64_t row_id) {
  Tuple key = ProjectTuple(row, columns_);
  entries_[std::move(key)].push_back(row_id);
  ++num_entries_;
}

std::vector<int64_t> OrderedIndex::Lookup(const Tuple& key) const {
  MAGICDB_CHECK(key.size() == columns_.size());
  auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  return it->second;
}

std::vector<int64_t> OrderedIndex::Range(const Tuple& lo,
                                         const Tuple& hi) const {
  std::vector<int64_t> out;
  auto begin = lo.empty() ? entries_.begin() : entries_.lower_bound(lo);
  auto end = hi.empty() ? entries_.end() : entries_.upper_bound(hi);
  for (auto it = begin; it != end; ++it) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

int64_t OrderedIndex::ModelledHeight() const {
  // Model a B-tree with fanout 256; height >= 1.
  int64_t height = 1;
  int64_t n = num_entries_;
  while (n > 256) {
    n /= 256;
    ++height;
  }
  return height;
}

}  // namespace magicdb
