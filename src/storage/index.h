#ifndef MAGICDB_STORAGE_INDEX_H_
#define MAGICDB_STORAGE_INDEX_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/types/tuple.h"

namespace magicdb {

/// Equality index: key columns -> row ids. Backed by a chained hash table;
/// collisions are resolved by comparing key values, so lookups are exact.
class HashIndex {
 public:
  explicit HashIndex(std::vector<int> columns)
      : columns_(std::move(columns)) {}

  const std::vector<int>& columns() const { return columns_; }

  /// Indexes `row` (stored at `row_id` in the owning table).
  void Insert(const Tuple& row, int64_t row_id);

  /// Row ids whose key columns equal `key` (key arity == columns arity).
  std::vector<int64_t> Lookup(const Tuple& key) const;

  int64_t NumEntries() const { return num_entries_; }

 private:
  struct Entry {
    Tuple key;
    std::vector<int64_t> row_ids;
  };

  std::vector<int> columns_;
  std::unordered_map<uint64_t, std::vector<Entry>> buckets_;
  int64_t num_entries_ = 0;
};

/// Ordered index: key columns -> row ids in key order. Supports equality
/// and range probes; models a B-tree for costing purposes.
class OrderedIndex {
 public:
  explicit OrderedIndex(std::vector<int> columns)
      : columns_(std::move(columns)) {}

  const std::vector<int>& columns() const { return columns_; }

  void Insert(const Tuple& row, int64_t row_id);

  std::vector<int64_t> Lookup(const Tuple& key) const;

  /// Row ids with lo <= key <= hi (either bound may be an empty tuple,
  /// meaning unbounded on that side), in key order.
  std::vector<int64_t> Range(const Tuple& lo, const Tuple& hi) const;

  int64_t NumEntries() const { return num_entries_; }

  /// Height of the modelled B-tree (levels charged per probe).
  int64_t ModelledHeight() const;

 private:
  struct KeyLess {
    bool operator()(const Tuple& a, const Tuple& b) const {
      return CompareTuples(a, b) < 0;
    }
  };

  std::vector<int> columns_;
  std::map<Tuple, std::vector<int64_t>, KeyLess> entries_;
  int64_t num_entries_ = 0;
};

}  // namespace magicdb

#endif  // MAGICDB_STORAGE_INDEX_H_
